#include "sim/fault/fault_injector.h"

#include <algorithm>

#include "common/log.h"
#include "gpu/device.h"
#include "gpu/stream.h"
#include "gpu/thread_block.h"
#include "mem/cache_geometry.h"
#include "sim/exec/sweep_runner.h"
#include "workloads/interference.h"

namespace gpucc::sim::fault
{

namespace
{

/** Stateless 64-bit mix of (seed, spec, occurrence, salt). */
std::uint64_t
mix(std::uint64_t seed, std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    using exec::splitmix64;
    return splitmix64(seed ^ splitmix64(a + splitmix64(b + splitmix64(c))));
}

} // namespace

FaultInjector::FaultInjector(gpu::Device &dev_, FaultPlan plan_,
                             std::uint64_t seed_)
    : dev(dev_), thePlan(std::move(plan_)), seed(seed_)
{
}

FaultInjector::~FaultInjector()
{
    if (dev.faultHooks() == this)
        dev.setFaultHooks(nullptr);
}

Tick
FaultInjector::occurrenceTick(const FaultSpec &f, std::size_t specIdx,
                              unsigned k, Tick base) const
{
    Tick t = base + cyclesToTicks(f.startCycle) +
             Tick(k) * cyclesToTicks(f.periodCycles);
    if (f.jitterCycles > 0) {
        Cycle j = static_cast<Cycle>(mix(seed, specIdx, k, 0x6a69) %
                                     (f.jitterCycles + 1));
        t += cyclesToTicks(j);
    }
    return t;
}

void
FaultInjector::armInterferer(const FaultSpec &f, std::size_t specIdx,
                             Tick base)
{
    workloads::WorkloadSpec spec;
    spec.blocks = f.blocks;
    spec.threadsPerBlock = f.threadsPerBlock;
    spec.iterations = f.iterations;

    InterfererState st;
    switch (f.interferer) {
      case InterfererKind::ConstWalker:
        st.prototype = workloads::makeConstantMemoryWorkload(dev, spec);
        break;
      case InterfererKind::Compute:
        st.prototype = workloads::makeComputeWorkload(spec);
        break;
      case InterfererKind::SharedMem:
        st.prototype =
            workloads::makeSharedMemoryWorkload(spec, 8 * 1024);
        break;
      case InterfererKind::Streaming:
        st.prototype = workloads::makeStreamingWorkload(dev, spec);
        break;
    }
    st.prototype.name = f.name;
    st.stream = &dev.createStream();
    interferers[specIdx] = st;

    for (unsigned k = 0; k < f.repeat; ++k) {
        Tick when = occurrenceTick(f, specIdx, k, base);
        dev.events().schedule(when, [this, specIdx] {
            if (!isArmed)
                return;
            const InterfererState &s = interferers[specIdx];
            // In-order streams serialize back-to-back bursts of one
            // spec by themselves; submitting from an event keeps the
            // launch inside global tick order.
            dev.submit(*s.stream, s.prototype, dev.now());
            ++counts.burstsLaunched;
            if (cBursts != nullptr)
                cBursts->inc();
            if (auto *tr = dev.traceShard();
                tr && tr->wants(trace::Cat::Fault)) {
                tr->nameRow(5002, "fault bursts");
                tr->instant(trace::Cat::Fault, 5002,
                            "burst " + s.prototype.name, dev.now());
            }
        });
    }
}

void
FaultInjector::armCacheThrash(const FaultSpec &f, std::size_t specIdx,
                              Tick base)
{
    GPUCC_ASSERT(f.setEnd > f.setBegin, "thrash fault '%s' has an empty "
                                        "set range",
                 f.name.c_str());
    const mem::CacheGeometry &geom = f.thrashL2
                                         ? dev.arch().constMem.l2
                                         : dev.arch().constMem.l1;
    GPUCC_ASSERT(f.setEnd <= geom.numSets(),
                 "thrash fault '%s' targets set %u of a %zu-set cache",
                 f.name.c_str(), f.setEnd - 1, geom.numSets());

    // The injector's own line addresses: one array per spec, aligned so
    // set indices are preserved, never overlapping a kernel's arrays.
    Addr stride = Addr(geom.numSets()) * geom.lineBytes;
    Addr arr = dev.allocConst(geom.sizeBytes, stride);
    std::vector<Addr> addrs;
    for (unsigned set = f.setBegin; set < f.setEnd; ++set) {
        for (unsigned way = 0; way < geom.ways; ++way) {
            addrs.push_back(arr + Addr(set) * geom.lineBytes +
                            Addr(way) * stride);
        }
    }
    thrashAddrs[specIdx] = std::move(addrs);

    // A window with intra-period spacing re-fires inside each
    // occurrence window; duration 0 means a single pass per occurrence.
    for (unsigned k = 0; k < f.repeat; ++k) {
        Tick start = occurrenceTick(f, specIdx, k, base);
        unsigned passes = 1;
        if (f.durationCycles > 0 && f.intraPeriodCycles > 0) {
            passes = static_cast<unsigned>(f.durationCycles /
                                           f.intraPeriodCycles) +
                     1;
        }
        for (unsigned j = 0; j < passes; ++j) {
            Tick when = start + Tick(j) * cyclesToTicks(f.intraPeriodCycles);
            dev.events().schedule(when, [this, specIdx] {
                if (!isArmed)
                    return;
                thrashOnce(thePlan.faults[specIdx],
                           thrashAddrs[specIdx]);
            });
        }
    }
}

void
FaultInjector::thrashOnce(const FaultSpec &f, const std::vector<Addr> &addrs)
{
    // Distinct "application" identity per spec so eviction traces and
    // way-partitioning treat the injector as a foreign tenant.
    int app = 9000 + static_cast<int>(f.setBegin);
    Tick now = dev.now();
    unsigned smBegin = f.targetSm < 0 ? 0u
                                      : static_cast<unsigned>(f.targetSm);
    unsigned smEnd = f.targetSm < 0 ? dev.numSms() : smBegin + 1;
    for (unsigned sm = smBegin; sm < smEnd; ++sm) {
        for (Addr a : addrs)
            dev.constMem().access(sm, a, now, -1, app);
    }
    ++counts.thrashPasses;
    if (cThrash != nullptr)
        cThrash->inc();
    if (auto *tr = dev.traceShard(); tr && tr->wants(trace::Cat::Fault)) {
        tr->nameRow(5003, "fault thrash");
        tr->instant(trace::Cat::Fault, 5003, "thrash " + f.name, now,
                    "sets",
                    static_cast<std::uint64_t>(f.setEnd - f.setBegin));
    }
}

void
FaultInjector::armKernelEvict(const FaultSpec &f, std::size_t specIdx,
                              Tick base)
{
    for (unsigned k = 0; k < f.repeat; ++k) {
        Tick when = occurrenceTick(f, specIdx, k, base);
        dev.events().schedule(when, [this, specIdx] {
            if (!isArmed)
                return;
            evictOnce(thePlan.faults[specIdx]);
        });
    }
}

void
FaultInjector::evictOnce(const FaultSpec &f)
{
    // Snapshot first: preemptBlock mutates the device's block list.
    std::vector<gpu::ThreadBlock *> victims;
    for (gpu::ThreadBlock *b : dev.liveBlocks()) {
        if (b->kernel().stream().id() == f.victimStream)
            victims.push_back(b);
    }
    for (gpu::ThreadBlock *b : victims) {
        dev.preemptBlock(*b);
        ++counts.evictions;
        if (cEvicts != nullptr)
            cEvicts->inc();
    }
    if (victims.empty())
        return;
    if (auto *tr = dev.traceShard(); tr && tr->wants(trace::Cat::Fault)) {
        tr->nameRow(5004, "fault evictions");
        tr->instant(trace::Cat::Fault, 5004, "evict " + f.name,
                    dev.now(), "blocks",
                    static_cast<std::uint64_t>(victims.size()));
    }
}

void
FaultInjector::armWindows(const FaultSpec &f, std::size_t specIdx,
                          Tick base, std::vector<Window> &out)
{
    for (unsigned k = 0; k < f.repeat; ++k) {
        Window w;
        w.begin = occurrenceTick(f, specIdx, k, base);
        w.end = w.begin + cyclesToTicks(f.durationCycles);
        w.specIdx = specIdx;
        out.push_back(w);
    }
}

void
FaultInjector::arm()
{
    GPUCC_ASSERT(!isArmed, "fault injector armed twice");
    GPUCC_ASSERT(dev.faultHooks() == nullptr,
                 "device already has a fault injector attached");
    isArmed = true;
    dev.setFaultHooks(this);
    Tick base = dev.now();

    // Registry counters survive the injector (re-arming a second
    // injector on the same device resumes the same metric).
    auto &reg = dev.metricsRegistry();
    cBursts = &reg.counter("fault.bursts");
    cThrash = &reg.counter("fault.thrashPasses");
    cStalls = &reg.counter("fault.stallsApplied");
    cEvicts = &reg.counter("fault.evictions");

    interferers.resize(thePlan.faults.size());
    thrashAddrs.resize(thePlan.faults.size());
    for (std::size_t i = 0; i < thePlan.faults.size(); ++i) {
        const FaultSpec &f = thePlan.faults[i];
        switch (f.kind) {
          case FaultKind::InterfererBurst:
            armInterferer(f, i, base);
            break;
          case FaultKind::CacheThrash:
            armCacheThrash(f, i, base);
            break;
          case FaultKind::ClockDegrade:
            armWindows(f, i, base, clockWins);
            counts.clockWindows += f.repeat;
            break;
          case FaultKind::WarpStall:
            armWindows(f, i, base, stallWins);
            counts.stallWindows += f.repeat;
            break;
          case FaultKind::KernelEvict:
            armKernelEvict(f, i, base);
            break;
          case FaultKind::ThresholdDrift:
            armWindows(f, i, base, driftWins);
            counts.driftWindows += f.repeat;
            break;
        }
    }
    auto byBegin = [](const Window &a, const Window &b) {
        return a.begin < b.begin;
    };
    std::sort(clockWins.begin(), clockWins.end(), byBegin);
    std::sort(stallWins.begin(), stallWins.end(), byBegin);
    std::sort(driftWins.begin(), driftWins.end(), byBegin);

    // Windows are known in full at arm time; emit their spans up front
    // so the timeline shows the planned fault schedule even when a
    // window ends up never being queried.
    if (auto *tr = dev.traceShard(); tr && tr->wants(trace::Cat::Fault)) {
        tr->nameRow(5000, "fault clock windows");
        tr->nameRow(5001, "fault stall windows");
        for (const Window &w : clockWins) {
            tr->span(trace::Cat::Fault, 5000,
                     thePlan.faults[w.specIdx].name, w.begin, w.end);
        }
        for (const Window &w : stallWins) {
            tr->span(trace::Cat::Fault, 5001,
                     thePlan.faults[w.specIdx].name, w.begin, w.end);
        }
        if (!driftWins.empty())
            tr->nameRow(5005, "fault drift windows");
        for (const Window &w : driftWins) {
            tr->span(trace::Cat::Fault, 5005,
                     thePlan.faults[w.specIdx].name, w.begin, w.end);
        }
    }
}

void
FaultInjector::disarm()
{
    isArmed = false;
}

namespace
{

/**
 * Binary-search helper: visit every window of a begin-sorted list that
 * covers @p t. Windows of different specs may overlap, so after
 * locating the first window starting after @p t we walk backwards
 * while a window could still cover it (plans carry a handful of specs;
 * in practice this touches 1-3 entries).
 */
template <typename Fn>
void
coveringWindows(const std::vector<FaultInjector::Window> &wins, Tick t,
                Fn &&fn)
{
    if (wins.empty())
        return;
    auto it = std::upper_bound(
        wins.begin(), wins.end(), t,
        [](Tick v, const FaultInjector::Window &w) { return v < w.begin; });
    while (it != wins.begin()) {
        --it;
        if (t < it->end)
            fn(*it);
        // Earlier windows of the same spec ended before this one began;
        // keep scanning only for overlapping windows of other specs.
        // A small fixed lookback bounds the scan.
        if (it->begin + (it->end - it->begin) * 4 < t)
            break;
    }
}

} // namespace

Cycle
FaultInjector::clockQuantumAt(Tick now) const
{
    if (!isArmed)
        return 0;
    Cycle q = 0;
    coveringWindows(clockWins, now, [&](const Window &w) {
        q = std::max(q, thePlan.faults[w.specIdx].quantumCycles);
    });
    return q;
}

std::int64_t
FaultInjector::latencyJitterAt(Tick now, std::uint64_t salt) const
{
    if (!isArmed)
        return 0;
    Cycle amp = 0;
    coveringWindows(clockWins, now, [&](const Window &w) {
        amp = std::max(amp, thePlan.faults[w.specIdx].latencyJitterCycles);
    });
    // ThresholdDrift: deterministic ramp 0 -> driftCycles across the
    // covering window (no randomness — drift is an environment trend,
    // not noise).
    std::int64_t bias = 0;
    coveringWindows(driftWins, now, [&](const Window &w) {
        Cycle peak = thePlan.faults[w.specIdx].driftCycles;
        Tick span = w.end - w.begin;
        if (peak == 0 || span == 0)
            return;
        auto ramp = static_cast<std::int64_t>(
            (static_cast<std::uint64_t>(peak) * (now - w.begin)) / span);
        bias = std::max(bias, ramp);
    });
    if (amp == 0)
        return bias;
    std::uint64_t h = mix(seed, now, salt, 0x6a74);
    return bias + static_cast<std::int64_t>(h % (2 * amp + 1)) -
           static_cast<std::int64_t>(amp);
}

Tick
FaultInjector::resumeDelayAt(unsigned streamId, Tick when)
{
    if (!isArmed || stallWins.empty())
        return 0;
    Tick delay = 0;
    coveringWindows(stallWins, when, [&](const Window &w) {
        if (thePlan.faults[w.specIdx].victimStream == streamId)
            delay = std::max(delay, w.end - when);
    });
    if (delay > 0) {
        ++counts.stallsApplied;
        if (cStalls != nullptr)
            cStalls->inc();
    }
    return delay;
}

} // namespace gpucc::sim::fault

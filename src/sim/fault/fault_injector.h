/**
 * @file
 * Seed-deterministic execution of a FaultPlan against a live Device.
 *
 * The injector schedules every fault occurrence on the device's event
 * queue at arm() time, so fault activity interleaves with the simulated
 * kernels in global tick order — the same (plan, seed) pair replays a
 * failure scenario bit-identically, independent of host thread count
 * (each Device owns its injector; nothing is shared across trials).
 *
 * Two fault families act through the queue (interferer launches,
 * cache-set thrash); two act through query hooks the device-side code
 * calls on its own hot paths (clock degradation in WarpCtx::clock and
 * the latency fuzz path, warp stalls in WarpCtx::scheduleResume). The
 * hooks are pure functions of (spec windows, seed, tick), so they add
 * no hidden state and cost nothing when no injector is attached.
 */

#ifndef GPUCC_SIM_FAULT_FAULT_INJECTOR_H
#define GPUCC_SIM_FAULT_FAULT_INJECTOR_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "gpu/kernel.h"
#include "sim/fault/fault_plan.h"

namespace gpucc::gpu
{
class Device;
class Stream;
} // namespace gpucc::gpu

namespace gpucc::metrics
{
class Counter;
} // namespace gpucc::metrics

namespace gpucc::sim::fault
{

/** What the injector actually did (tests assert faults fired). */
struct FaultStats
{
    unsigned burstsLaunched = 0; //!< interferer kernels submitted
    unsigned thrashPasses = 0;   //!< cache-set eviction passes
    unsigned clockWindows = 0;   //!< clock-degrade windows armed
    unsigned stallWindows = 0;   //!< warp-stall windows armed
    unsigned driftWindows = 0;   //!< threshold-drift windows armed
    std::uint64_t stallsApplied = 0; //!< resumes deferred by a stall
    unsigned evictions = 0;      //!< blocks preempted by KernelEvict
};

/** Drives one FaultPlan against one Device. */
class FaultInjector
{
  public:
    /**
     * @param dev Target device (must outlive the injector).
     * @param plan Scenario to execute.
     * @param seed Jitter seed; (plan, seed) fully determines behavior.
     */
    FaultInjector(gpu::Device &dev, FaultPlan plan, std::uint64_t seed = 1);

    /** Detaches the hooks from the device. */
    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /**
     * Schedule every occurrence and attach the query hooks. Call once,
     * before (or while) the experiment runs; occurrences are placed
     * relative to the device's current tick.
     */
    void arm();

    /**
     * Stop injecting: already-queued occurrences become no-ops and the
     * hooks report no active windows. The queue still drains normally.
     */
    void disarm();

    /** @return true between arm() and disarm(). */
    bool armed() const { return isArmed; }

    /** Executed-fault accounting. */
    const FaultStats &stats() const { return counts; }

    /** The plan being executed. */
    const FaultPlan &plan() const { return thePlan; }

    // ---- Hooks (device-side code queries these on its hot paths) ----

    /** Largest clock() quantum demanded by a window active at @p now
     *  (0 = no degradation). */
    Cycle clockQuantumAt(Tick now) const;

    /**
     * Deterministic latency perturbation at @p now (cycles, may be
     * negative). @p salt decorrelates call sites within one tick.
     * Includes the ThresholdDrift ramp bias of any covering drift
     * window (always non-negative, grows linearly across the window).
     */
    std::int64_t latencyJitterAt(Tick now, std::uint64_t salt) const;

    /**
     * Extra delay for a warp resume of @p streamId scheduled at
     * @p when: the remainder of any stall window covering @p when
     * whose victim stream matches (0 = run on time).
     */
    Tick resumeDelayAt(unsigned streamId, Tick when);

    /** A [begin, end) activity window of one spec (internal, public
     *  only so free helpers in the implementation can take it). */
    struct Window
    {
        Tick begin = 0;
        Tick end = 0;
        std::size_t specIdx = 0;
    };

  private:
    /** Occurrence k's start tick (seeded jitter included). */
    Tick occurrenceTick(const FaultSpec &f, std::size_t specIdx,
                        unsigned k, Tick base) const;

    void armInterferer(const FaultSpec &f, std::size_t specIdx, Tick base);
    void armCacheThrash(const FaultSpec &f, std::size_t specIdx,
                        Tick base);
    void armKernelEvict(const FaultSpec &f, std::size_t specIdx,
                        Tick base);
    void armWindows(const FaultSpec &f, std::size_t specIdx, Tick base,
                    std::vector<Window> &out);

    /** Preempt every live block of the spec's victim stream. */
    void evictOnce(const FaultSpec &f);

    /** One eviction pass over the spec's target sets. */
    void thrashOnce(const FaultSpec &f, const std::vector<Addr> &addrs);

    gpu::Device &dev;
    FaultPlan thePlan;
    std::uint64_t seed;
    bool isArmed = false;
    FaultStats counts;

    /** Registry-owned counters mirroring @c counts (cached at arm();
     *  they outlive the injector, so snapshots never dangle). */
    metrics::Counter *cBursts = nullptr;
    metrics::Counter *cThrash = nullptr;
    metrics::Counter *cStalls = nullptr;
    metrics::Counter *cEvicts = nullptr;

    /** Sorted (by begin) windows per hook family. */
    std::vector<Window> clockWins;
    std::vector<Window> stallWins;
    std::vector<Window> driftWins;

    /** Per-interferer-spec prototype launch and private stream. */
    struct InterfererState
    {
        gpu::KernelLaunch prototype;
        gpu::Stream *stream = nullptr;
    };
    std::vector<InterfererState> interferers; //!< indexed by spec
    std::vector<std::vector<Addr>> thrashAddrs; //!< indexed by spec
};

} // namespace gpucc::sim::fault

#endif // GPUCC_SIM_FAULT_FAULT_INJECTOR_H

/**
 * @file
 * Declarative fault plans for deterministic failure injection.
 *
 * Section 8 of the paper shows the raw channels degrade badly (BER up
 * to ~10%) once other workloads share the GPU, but provoking a
 * *specific* failure on demand — an interferer burst landing exactly on
 * a handshake, the cycle counter coarsening mid-transfer, one party
 * being preempted — is hopeless with ad-hoc co-runners. A FaultPlan
 * states such scenarios as data: a list of named faults, each with a
 * deterministic schedule, so any failure replays bit-identically from
 * (plan, seed). FaultInjector (fault_injector.h) executes a plan
 * against a live Device.
 *
 * This header is pure data (no gpu/ dependencies) so plans can be
 * built, stored, and compared anywhere.
 */

#ifndef GPUCC_SIM_FAULT_FAULT_PLAN_H
#define GPUCC_SIM_FAULT_FAULT_PLAN_H

#include <string>
#include <vector>

#include "common/types.h"

namespace gpucc::sim::fault
{

/** The failure families the injector can provoke. */
enum class FaultKind
{
    /** Launch an interfering kernel (Rodinia-like signature) at the
     *  scheduled ticks — the Section 8 co-runner, on demand. */
    InterfererBurst,
    /** Degrade the cycle counter inside a window: coarser clock()
     *  quantization and/or deterministic jitter on every latency a
     *  program observes (a hostile or power-saving driver). */
    ClockDegrade,
    /** Freeze one application's warps for the window (one-sided
     *  preemption): every resume landing inside the window is deferred
     *  to the window's end. */
    WarpStall,
    /** Install foreign lines into a chosen range of constant-cache
     *  sets (targeted eviction of a channel's data/signal sets). */
    CacheThrash,
    /** Evict one application's running blocks mid-kernel (driver-level
     *  preemption / relaunch): every live block of the victim stream is
     *  cancelled, its SM slice released, and the block requeued for
     *  re-placement — it restarts its body from scratch while the peer
     *  keeps running. */
    KernelEvict,
    /** Slow latency drift: inside each window every observed latency
     *  gains a bias that ramps linearly from 0 to driftCycles (thermal
     *  throttling / DVFS creep). Defeats any threshold calibrated once
     *  and never revisited. */
    ThresholdDrift,
};

/** @return printable fault-kind name. */
const char *faultKindName(FaultKind k);

/** Interferer resource signatures (mirrors workloads/interference.h). */
enum class InterfererKind
{
    ConstWalker, //!< "heartwall"-like: walks constant memory
    Compute,     //!< "hotspot"-like: SP/SFU bound
    SharedMem,   //!< "srad"-like: claims shared memory
    Streaming,   //!< "backprop"-like: streams global memory
};

/**
 * One scheduled fault.
 *
 * Occurrences are derived purely from the spec and the injector seed:
 * occurrence k starts at startCycle + k * periodCycles (plus a small
 * seeded jitter when jitterCycles > 0) for k in [0, repeat). Window
 * faults (ClockDegrade, WarpStall) are active for durationCycles from
 * each occurrence; CacheThrash re-fires every intraPeriodCycles within
 * that window; InterfererBurst launches once per occurrence.
 */
struct FaultSpec
{
    std::string name;                //!< label for traces/tests
    FaultKind kind = FaultKind::CacheThrash;

    Cycle startCycle = 0;            //!< first occurrence
    unsigned repeat = 1;             //!< number of occurrences
    Cycle periodCycles = 0;          //!< occurrence spacing (repeat > 1)
    Cycle durationCycles = 0;        //!< window length per occurrence
    Cycle jitterCycles = 0;          //!< seeded start jitter amplitude

    // InterfererBurst
    InterfererKind interferer = InterfererKind::ConstWalker;
    unsigned blocks = 4;             //!< interferer grid blocks
    unsigned threadsPerBlock = 128;
    unsigned iterations = 400;       //!< interferer loop trip count

    // ClockDegrade
    Cycle quantumCycles = 0;         //!< clock() granularity override
    Cycle latencyJitterCycles = 0;   //!< +/- noise on observed latencies

    // WarpStall / KernelEvict
    unsigned victimStream = 1;       //!< kernels on this stream suffer

    // ThresholdDrift
    Cycle driftCycles = 0;           //!< peak latency bias at window end

    // CacheThrash
    unsigned setBegin = 0;           //!< first targeted set
    unsigned setEnd = 1;             //!< one past the last targeted set
    int targetSm = 0;                //!< SM whose L1 is thrashed; -1 = all
    bool thrashL2 = false;           //!< target the shared L2 instead
    Cycle intraPeriodCycles = 0;     //!< re-fire spacing inside a window
};

/** A named collection of faults (the replayable scenario). */
struct FaultPlan
{
    std::string name = "quiet";
    std::vector<FaultSpec> faults;

    /** @return true when the plan injects nothing. */
    bool empty() const { return faults.empty(); }

    /**
     * Scenario presets shared by tests, benches, and examples:
     *
     *  - "quiet": no faults (control).
     *  - "bursty": sparse interferer bursts plus occasional targeted
     *    thrash — the co-runner that comes and goes.
     *  - "adversarial": dense thrash trains on the duplex channel's
     *    data and handshake sets, clock degradation, and one-sided
     *    stalls — drives the raw duplex channel to ~10% BER.
     *  - "datacenter": the full Rodinia-like mix arriving on staggered
     *    schedules with mild timer jitter — ambient multi-tenant load.
     *  - "eviction": mid-transfer kernel evictions of both parties plus
     *    slow threshold drift and sparse handshake thrash — the
     *    scenario the self-healing session layer exists for.
     */
    static FaultPlan preset(const std::string &name);

    /** Names accepted by preset(). */
    static std::vector<std::string> presetNames();
};

} // namespace gpucc::sim::fault

#endif // GPUCC_SIM_FAULT_FAULT_PLAN_H

#include "sim/fault/fault_plan.h"

#include "common/log.h"

namespace gpucc::sim::fault
{

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::InterfererBurst:
        return "interferer-burst";
      case FaultKind::ClockDegrade:
        return "clock-degrade";
      case FaultKind::WarpStall:
        return "warp-stall";
      case FaultKind::CacheThrash:
        return "cache-thrash";
      case FaultKind::KernelEvict:
        return "kernel-evict";
      case FaultKind::ThresholdDrift:
        return "threshold-drift";
    }
    return "?";
}

namespace
{

/**
 * The presets are tuned against the Kepler duplex channel (the link
 * layer's substrate): its round period is ~15-25k cycles, a 60-bit
 * frame exchange ~1.5M cycles. Faults therefore come in *trains* with
 * multi-frame quiet gaps — dense enough to corrupt a sizeable fraction
 * of raw bits, sparse enough that a retransmitted frame can land clean.
 */

FaultPlan
burstyPlan()
{
    FaultPlan p;
    p.name = "bursty";

    FaultSpec walker;
    walker.name = "const-walker-burst";
    walker.kind = FaultKind::InterfererBurst;
    walker.interferer = InterfererKind::ConstWalker;
    walker.blocks = 4;
    walker.threadsPerBlock = 128;
    walker.iterations = 250;
    walker.startCycle = 150'000;
    walker.periodCycles = 7'800'000;
    walker.jitterCycles = 400'000;
    walker.repeat = 120;
    p.faults.push_back(walker);

    FaultSpec compute;
    compute.name = "compute-burst";
    compute.kind = FaultKind::InterfererBurst;
    compute.interferer = InterfererKind::Compute;
    compute.blocks = 4;
    compute.iterations = 350;
    compute.startCycle = 1'300'000;
    compute.periodCycles = 9'400'000;
    compute.jitterCycles = 500'000;
    compute.repeat = 90;
    p.faults.push_back(compute);

    FaultSpec thrash;
    thrash.name = "occasional-set-thrash";
    thrash.kind = FaultKind::CacheThrash;
    thrash.setBegin = 0;
    thrash.setEnd = 2;
    thrash.targetSm = 0;
    thrash.startCycle = 900'000;
    thrash.periodCycles = 11'000'000;
    thrash.durationCycles = 60'000;
    thrash.intraPeriodCycles = 18'000;
    thrash.jitterCycles = 600'000;
    thrash.repeat = 60;
    p.faults.push_back(thrash);

    return p;
}

FaultPlan
adversarialPlan()
{
    FaultPlan p;
    p.name = "adversarial";

    // Dense eviction trains on the duplex data sets (fwd set 0, rev
    // set 1): every probe inside a train reads misses and decodes 1.
    FaultSpec data;
    data.name = "data-set-thrash";
    data.kind = FaultKind::CacheThrash;
    data.setBegin = 0;
    data.setEnd = 2;
    data.targetSm = 0;
    data.startCycle = 60'000;
    data.periodCycles = 2'700'000;
    data.durationCycles = 170'000;
    data.intraPeriodCycles = 11'000;
    data.jitterCycles = 120'000;
    data.repeat = 700;
    p.faults.push_back(data);

    // Trains on the handshake sets (RTS/RTR live in the top four sets
    // of the 8-set Kepler L1): spurious signals and missed
    // announcements — timeouts and retries.
    FaultSpec shake;
    shake.name = "handshake-set-thrash";
    shake.kind = FaultKind::CacheThrash;
    shake.setBegin = 4;
    shake.setEnd = 8;
    shake.targetSm = 0;
    shake.startCycle = 650'000;
    shake.periodCycles = 5'600'000;
    shake.durationCycles = 80'000;
    shake.intraPeriodCycles = 14'000;
    shake.jitterCycles = 200'000;
    shake.repeat = 320;
    p.faults.push_back(shake);

    // Timer degradation windows: coarse clock() plus latency jitter
    // that blurs the hit/miss populations near the decode threshold.
    FaultSpec clock;
    clock.name = "timer-degrade";
    clock.kind = FaultKind::ClockDegrade;
    clock.quantumCycles = 32;
    clock.latencyJitterCycles = 12;
    clock.startCycle = 250'000;
    clock.periodCycles = 6'400'000;
    clock.durationCycles = 300'000;
    clock.jitterCycles = 250'000;
    clock.repeat = 260;
    p.faults.push_back(clock);

    // One-sided preemption of the spy application: its warps freeze for
    // the window while the trojan keeps going.
    FaultSpec stall;
    stall.name = "spy-preemption";
    stall.kind = FaultKind::WarpStall;
    stall.victimStream = 1;
    stall.startCycle = 1'500'000;
    stall.periodCycles = 9'300'000;
    stall.durationCycles = 35'000;
    stall.jitterCycles = 400'000;
    stall.repeat = 170;
    p.faults.push_back(stall);

    return p;
}

FaultPlan
datacenterPlan()
{
    FaultPlan p;
    p.name = "datacenter";

    const InterfererKind kinds[] = {
        InterfererKind::ConstWalker, InterfererKind::Compute,
        InterfererKind::SharedMem, InterfererKind::Streaming};
    const char *names[] = {"heartwall-arrivals", "hotspot-arrivals",
                           "srad-arrivals", "backprop-arrivals"};
    for (unsigned i = 0; i < 4; ++i) {
        FaultSpec f;
        f.name = names[i];
        f.kind = FaultKind::InterfererBurst;
        f.interferer = kinds[i];
        f.blocks = 3;
        f.threadsPerBlock = 128;
        f.iterations = 300;
        f.startCycle = 200'000 + Cycle(i) * 2'150'000;
        f.periodCycles = 8'100'000 + Cycle(i) * 900'000;
        f.jitterCycles = 600'000;
        f.repeat = 90;
        p.faults.push_back(f);
    }

    // Ambient timer noise: long mild-jitter windows (shared clocking /
    // DVFS wobble), no quantization change.
    FaultSpec clock;
    clock.name = "ambient-timer-noise";
    clock.kind = FaultKind::ClockDegrade;
    clock.latencyJitterCycles = 5;
    clock.startCycle = 0;
    clock.periodCycles = 2'000'000;
    clock.durationCycles = 1'200'000;
    clock.repeat = 300;
    p.faults.push_back(clock);

    return p;
}

FaultPlan
evictionPlan()
{
    FaultPlan p;
    p.name = "eviction";

    // The spy's kernel is evicted and relaunched mid-transfer every few
    // frame exchanges: its block restarts from scratch, the current
    // frame decodes as garbage, and any naive transfer loses its place.
    FaultSpec spyEvict;
    spyEvict.name = "spy-evict";
    spyEvict.kind = FaultKind::KernelEvict;
    spyEvict.victimStream = 1;
    spyEvict.startCycle = 1'200'000;
    spyEvict.periodCycles = 6'500'000;
    spyEvict.jitterCycles = 700'000;
    spyEvict.repeat = 80;
    p.faults.push_back(spyEvict);

    // The trojan goes too, less often (both parties are ordinary
    // tenants; the driver plays no favorites).
    FaultSpec trojanEvict;
    trojanEvict.name = "trojan-evict";
    trojanEvict.kind = FaultKind::KernelEvict;
    trojanEvict.victimStream = 0;
    trojanEvict.startCycle = 4'300'000;
    trojanEvict.periodCycles = 16'000'000;
    trojanEvict.jitterCycles = 1'100'000;
    trojanEvict.repeat = 35;
    p.faults.push_back(trojanEvict);

    // Slow thermal-style drift: latencies creep upward across each long
    // window, eroding the margin of any threshold calibrated before the
    // window opened.
    FaultSpec drift;
    drift.name = "thermal-drift";
    drift.kind = FaultKind::ThresholdDrift;
    drift.driftCycles = 24;
    drift.startCycle = 500'000;
    drift.periodCycles = 8'000'000;
    drift.durationCycles = 3'200'000;
    drift.jitterCycles = 300'000;
    drift.repeat = 120;
    p.faults.push_back(drift);

    // Sparse handshake thrash so resync pilots see occasional loss too.
    FaultSpec shake;
    shake.name = "handshake-thrash";
    shake.kind = FaultKind::CacheThrash;
    shake.setBegin = 4;
    shake.setEnd = 8;
    shake.targetSm = 0;
    shake.startCycle = 3'400'000;
    shake.periodCycles = 12'500'000;
    shake.durationCycles = 50'000;
    shake.intraPeriodCycles = 16'000;
    shake.jitterCycles = 500'000;
    shake.repeat = 70;
    p.faults.push_back(shake);

    return p;
}

} // namespace

FaultPlan
FaultPlan::preset(const std::string &name)
{
    if (name == "quiet")
        return FaultPlan{};
    if (name == "bursty")
        return burstyPlan();
    if (name == "adversarial")
        return adversarialPlan();
    if (name == "datacenter")
        return datacenterPlan();
    if (name == "eviction")
        return evictionPlan();
    GPUCC_FATAL("unknown fault-plan preset '%s'", name.c_str());
}

std::vector<std::string>
FaultPlan::presetNames()
{
    return {"quiet", "bursty", "adversarial", "datacenter", "eviction"};
}

} // namespace gpucc::sim::fault

#include "sim/event_queue.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/log.h"
#include "common/metrics/metrics.h"

namespace gpucc::sim
{

namespace
{
/** Arity of the node heap: children of node i are 4i+1 .. 4i+4. */
constexpr std::size_t heapArity = 4;
} // namespace

EventQueue::EventQueue() : table(tableSize)
{
    keys.reserve(initialCapacity);
    entries.reserve(initialCapacity);
    entryFree.reserve(initialCapacity);
    nodes.reserve(initialCapacity);
    nodeFree.reserve(initialCapacity);
}

Tick
EventQueue::clampPastEvent(Tick when) const
{
#ifndef NDEBUG
    GPUCC_PANIC("event scheduled in the past (%llu < %llu)",
                static_cast<unsigned long long>(when),
                static_cast<unsigned long long>(current));
#else
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
        GPUCC_WARN("event scheduled in the past (%llu < %llu); clamping "
                   "to now() (further occurrences not reported)",
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(current));
    }
    return current;
#endif
}

void
EventQueue::siftUp(std::size_t i)
{
    const Key moving = keys[i];
    while (i > 0) {
        std::size_t parent = (i - 1) / heapArity;
        if (!moving.before(keys[parent]))
            break;
        keys[i] = keys[parent];
        i = parent;
    }
    keys[i] = moving;
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = keys.size();
    const Key moving = keys[i];
    for (;;) {
        std::size_t first = heapArity * i + 1;
        if (first >= n)
            break;
        std::size_t limit = std::min(first + heapArity, n);
        std::size_t best = first;
        for (std::size_t c = first + 1; c < limit; ++c) {
            if (keys[c].before(keys[best]))
                best = c;
        }
        if (!keys[best].before(moving))
            break;
        keys[i] = keys[best];
        i = best;
    }
    keys[i] = moving;
}

EventQueue::Key
EventQueue::popTop()
{
    const Key top = keys.front();
    keys.front() = keys.back();
    keys.pop_back();
    if (!keys.empty())
        siftDown(0);
    return top;
}

void
EventQueue::activateTop()
{
    const Key k = popTop();
    Node &n = nodes[k.node];
    activeFirst = std::move(n.first);
    activeFirstSeq = n.firstSeq;
    activeFirstLive = true;
    activeHead = n.head;
    activeWhen = n.when;
    current = n.when;
    n.live = false;
    TickRef &ref = table[tickHash(n.when)];
    if (ref.node == k.node)
        ref.node = nil;
    nodeFree.push_back(k.node);
}

Tick
EventQueue::run()
{
    while (numPending != 0) {
        if (!draining())
            activateTop();
        while (draining())
            fireOne();
    }
    return current;
}

bool
EventQueue::step()
{
    if (numPending == 0)
        return false;
    if (!draining())
        activateTop();
    fireOne();
    return true;
}

void
EventQueue::runUntil(Tick limit)
{
    while (numPending != 0) {
        if (!draining()) {
            if (keys.front().when > limit)
                break;
            activateTop();
        }
        while (draining())
            fireOne();
    }
    if (current < limit)
        current = limit;
}

void
EventQueue::advanceTo(Tick when)
{
    GPUCC_ASSERT(numPending == 0 || nextTick() >= when,
                 "cannot advance past pending events");
    if (when > current)
        current = when;
}

std::vector<std::pair<Tick, std::uint64_t>>
EventQueue::pendingEvents() const
{
    std::vector<std::pair<Tick, std::uint64_t>> out;
    out.reserve(numPending);
    auto walk = [&](Tick when, std::uint32_t head) {
        for (std::uint32_t e = head; e != nil; e = entries[e].next) {
            out.emplace_back(when, (entries[e].seq << slotBits) |
                                       std::uint64_t(e));
        }
    };
    if (activeFirstLive)
        out.emplace_back(activeWhen, activeFirstSeq << slotBits);
    if (activeHead != nil)
        walk(activeWhen, activeHead);
    for (const Key &k : keys) {
        out.emplace_back(k.when, (k.firstSeq << slotBits) |
                                     std::uint64_t(k.node));
        walk(k.when, nodes[k.node].head);
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.first != b.first
                             ? a.first < b.first
                             : (a.second >> slotBits) < (b.second >> slotBits);
              });
    return out;
}

EventQueue::IdleState
EventQueue::idleState() const
{
    GPUCC_ASSERT(numPending == 0, "idleState() requires a drained queue");
    IdleState s;
    s.current = current;
    s.nextSeq = nextSeq;
    s.fired = fired;
    s.entrySlabSize = static_cast<std::uint32_t>(entries.size());
    s.nodeSlabSize = static_cast<std::uint32_t>(nodes.size());
    s.entryFree = entryFree;
    s.nodeFree = nodeFree;
    return s;
}

void
EventQueue::restoreIdleState(const IdleState &s)
{
    GPUCC_ASSERT(numPending == 0, "restoreIdleState() requires a drained "
                                  "queue");
    current = s.current;
    nextSeq = s.nextSeq;
    fired = s.fired;
    entries.clear();
    entries.resize(s.entrySlabSize);
    entryFree = s.entryFree;
    nodes.clear();
    nodes.resize(s.nodeSlabSize);
    nodeFree = s.nodeFree;
    // A freshly cleared coalescing table behaves identically to the
    // source queue's (all of whose references were dead at idle, since
    // no node was live and future events are strictly after now()).
    std::fill(table.begin(), table.end(), TickRef{});
    keys.clear();
    activeFirst = EventFn{};
    activeFirstLive = false;
    activeHead = nil;
    activeWhen = 0;
}

void
EventQueue::registerMetrics(metrics::Registry &reg)
{
    reg.gauge("sim.events.executed",
              [this] { return static_cast<double>(fired); });
    reg.gauge("sim.events.pending",
              [this] { return static_cast<double>(numPending); });
}

} // namespace gpucc::sim

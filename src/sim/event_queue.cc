#include "sim/event_queue.h"

#include "common/log.h"

namespace gpucc::sim
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    GPUCC_ASSERT(when >= current,
                 "event scheduled in the past (%llu < %llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(current));
    events.push(Entry{when, nextSeq++, std::move(cb)});
}

Tick
EventQueue::run()
{
    while (!events.empty()) {
        // Move the callback out before popping so re-entrant schedule()
        // calls from inside the callback see a consistent queue.
        Entry e = std::move(const_cast<Entry &>(events.top()));
        events.pop();
        current = e.when;
        ++fired;
        e.cb();
    }
    return current;
}

bool
EventQueue::step()
{
    if (events.empty())
        return false;
    Entry e = std::move(const_cast<Entry &>(events.top()));
    events.pop();
    current = e.when;
    ++fired;
    e.cb();
    return true;
}

void
EventQueue::runUntil(Tick limit)
{
    while (!events.empty() && events.top().when <= limit) {
        Entry e = std::move(const_cast<Entry &>(events.top()));
        events.pop();
        current = e.when;
        ++fired;
        e.cb();
    }
    if (current < limit)
        current = limit;
}

void
EventQueue::advanceTo(Tick when)
{
    GPUCC_ASSERT(events.empty() || events.top().when >= when,
                 "cannot advance past pending events");
    if (when > current)
        current = when;
}

} // namespace gpucc::sim

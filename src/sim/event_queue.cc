#include "sim/event_queue.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/log.h"
#include "common/metrics/metrics.h"

namespace gpucc::sim
{

namespace
{
/** Arity of the event heap: children of node i are 4i+1 .. 4i+4. */
constexpr std::size_t heapArity = 4;
} // namespace

Tick
EventQueue::clampPastEvent(Tick when) const
{
#ifndef NDEBUG
    GPUCC_PANIC("event scheduled in the past (%llu < %llu)",
                static_cast<unsigned long long>(when),
                static_cast<unsigned long long>(current));
#else
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
        GPUCC_WARN("event scheduled in the past (%llu < %llu); clamping "
                   "to now() (further occurrences not reported)",
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(current));
    }
    return current;
#endif
}

void
EventQueue::siftUp(std::size_t i)
{
    const Key moving = keys[i];
    while (i > 0) {
        std::size_t parent = (i - 1) / heapArity;
        if (!moving.before(keys[parent]))
            break;
        keys[i] = keys[parent];
        i = parent;
    }
    keys[i] = moving;
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = keys.size();
    const Key moving = keys[i];
    for (;;) {
        std::size_t first = heapArity * i + 1;
        if (first >= n)
            break;
        std::size_t limit = std::min(first + heapArity, n);
        std::size_t best = first;
        for (std::size_t c = first + 1; c < limit; ++c) {
            if (keys[c].before(keys[best]))
                best = c;
        }
        if (!keys[best].before(moving))
            break;
        keys[i] = keys[best];
        i = best;
    }
    keys[i] = moving;
}

EventQueue::Key
EventQueue::popTop()
{
    const Key top = keys.front();
    keys.front() = keys.back();
    keys.pop_back();
    if (!keys.empty())
        siftDown(0);
    return top;
}

Tick
EventQueue::run()
{
    while (!keys.empty())
        fire(popTop());
    return current;
}

bool
EventQueue::step()
{
    if (keys.empty())
        return false;
    fire(popTop());
    return true;
}

void
EventQueue::runUntil(Tick limit)
{
    while (!keys.empty() && keys.front().when <= limit)
        fire(popTop());
    if (current < limit)
        current = limit;
}

void
EventQueue::advanceTo(Tick when)
{
    GPUCC_ASSERT(keys.empty() || keys.front().when >= when,
                 "cannot advance past pending events");
    if (when > current)
        current = when;
}

std::vector<std::pair<Tick, std::uint64_t>>
EventQueue::pendingEvents() const
{
    std::vector<Key> sorted = keys;
    std::sort(sorted.begin(), sorted.end(),
              [](const Key &a, const Key &b) { return a.before(b); });
    std::vector<std::pair<Tick, std::uint64_t>> out;
    out.reserve(sorted.size());
    for (const Key &k : sorted)
        out.emplace_back(k.when, k.seqSlot);
    return out;
}

void
EventQueue::registerMetrics(metrics::Registry &reg)
{
    reg.gauge("sim.events.executed",
              [this] { return static_cast<double>(fired); });
    reg.gauge("sim.events.pending",
              [this] { return static_cast<double>(keys.size()); });
}

} // namespace gpucc::sim

/**
 * @file
 * Global event queue driving the device simulation.
 *
 * Warps suspend on device operations and are resumed by events scheduled
 * at the operation completion tick. Events at equal ticks fire in
 * schedule order (FIFO), which keeps the simulation deterministic.
 *
 * The queue is the simulator's hottest structure: every warp
 * instruction retires through at least one event. Three things keep it
 * cheap:
 *
 *  - callbacks are EventFn (small-buffer inline storage), so the
 *    common warp-resume capture (a Warp* plus a coroutine_handle)
 *    never touches the heap;
 *  - events that share a tick are coalesced into one *batch node*: a
 *    singly-linked chain through a stable entry slab, ordered by
 *    schedule sequence. The min-heap orders nodes, not events, so N
 *    warps waking at one tick (the lockstep-SM common case) cost one
 *    heap pop plus a pointer walk instead of N sift-downs;
 *  - coalescing is found through a small direct-mapped table keyed by
 *    tick. The table is lossy by design: a collision merely starts a
 *    fresh node for that tick, and because a tick's table slot only
 *    ever moves to *newer* nodes, chains still fire in global schedule
 *    order (nodes are heap-ordered by their first sequence number).
 */

#ifndef GPUCC_SIM_EVENT_QUEUE_H
#define GPUCC_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <vector>

#include "common/log.h"
#include "common/types.h"
#include "sim/event_fn.h"

namespace gpucc::metrics
{
class Registry;
} // namespace gpucc::metrics

namespace gpucc::sim
{

/** Time-ordered callback queue. */
class EventQueue
{
  public:
    using Callback = EventFn;

    /**
     * Schedule @p cb to run at absolute tick @p when.
     *
     * Scheduling in the past (@p when < now()) is a model bug: debug
     * builds panic, release builds clamp the event to now() so
     * simulated time still never runs backwards.
     */
    void
    schedule(Tick when, Callback cb)
    {
        if (when < current) [[unlikely]]
            when = clampPastEvent(when);
        GPUCC_ASSERT(nextSeq < (std::uint64_t(1) << (64 - slotBits)),
                     "event FIFO sequence space exhausted");
        ++numPending;
        TickRef &ref = table[tickHash(when)];
        if (ref.node != nil && ref.when == when) {
            Node &n = nodes[ref.node];
            if (n.live && n.when == when) {
                const std::uint32_t e = allocEntry(std::move(cb));
                if (n.tail == nil)
                    n.head = e;
                else
                    entries[n.tail].next = e;
                n.tail = e;
                return;
            }
        }
        const std::uint32_t ni = allocNode();
        Node &n = nodes[ni];
        n.when = when;
        n.firstSeq = nextSeq++;
        n.first = std::move(cb);
        n.head = n.tail = nil;
        n.live = true;
        ref.when = when;
        ref.node = ni;
        keys.push_back(Key{when, n.firstSeq, ni});
        siftUp(keys.size() - 1);
    }

    EventQueue();

    /** @return current simulated tick. */
    Tick now() const { return current; }

    /** Run events until the queue drains. @return final tick. */
    Tick run();

    /** Execute exactly one event. @return false when the queue is empty. */
    bool step();

    /**
     * Run events up to and including tick @p limit; later events remain
     * queued. Advances now() to at most @p limit.
     */
    void runUntil(Tick limit);

    /** @return true when no events are pending. */
    bool empty() const { return numPending == 0; }

    /**
     * Tick of the next pending event (the earliest). Precondition:
     * !empty(). This is what the warp fast path consults to decide
     * whether an operation's completion can be reached without any
     * intervening event.
     */
    Tick
    nextTick() const
    {
        GPUCC_ASSERT(numPending != 0, "nextTick() on an empty queue");
        return draining() ? activeWhen : keys.front().when;
    }

    /** Number of events executed since construction. */
    std::uint64_t executed() const { return fired; }

    /** Number of events currently pending. */
    std::size_t pending() const { return numPending; }

    /** Force the current tick forward (host-side idle time). */
    void advanceTo(Tick when);

    /** Expose executed/pending as pull gauges in @p reg. */
    void registerMetrics(metrics::Registry &reg);

    /**
     * Pending events as (when, fifo-sequence) pairs in firing order —
     * the exact order run() would execute them. The sequence numbers
     * are raw (they include the slab slot in the low bits), so two
     * queues with identical histories produce identical lists; queues
     * that merely fire the same work in the same order may differ.
     * Diagnostic/verification use only (walks every chain).
     */
    std::vector<std::pair<Tick, std::uint64_t>> pendingEvents() const;

    /**
     * Bookkeeping needed to resurrect an *idle* queue bit-identically:
     * clock, sequence counter, and the slab free lists (future slot
     * numbers feed pendingEvents(), which digests fold). Device
     * snapshot/fork uses this; both ends require empty().
     */
    struct IdleState
    {
        Tick current = 0;
        std::uint64_t nextSeq = 0;
        std::uint64_t fired = 0;
        std::uint32_t entrySlabSize = 0;
        std::uint32_t nodeSlabSize = 0;
        std::vector<std::uint32_t> entryFree;
        std::vector<std::uint32_t> nodeFree;
    };

    /** Capture the idle-queue state (requires empty()). */
    IdleState idleState() const;

    /** Restore a previously captured idle state (requires empty()). */
    void restoreIdleState(const IdleState &s);

  private:
    /** Initial reservation for the node heap and the two slabs. */
    static constexpr std::size_t initialCapacity = 4096;

    /** Null link in the entry/node slabs. */
    static constexpr std::uint32_t nil = 0xffffffffu;

    /**
     * Size (power of two) of the direct-mapped tick-coalescing table.
     * Misses are correctness-neutral (they just start another node), so
     * the table never grows or rehashes.
     */
    static constexpr std::size_t tableSize = 2048;

    /**
     * Low bits of a pendingEvents() sequence word holding the entry
     * slot; the upper 64 - slotBits bits hold the FIFO sequence number.
     * 24 bits bound the *pending* event count (16M simultaneously
     * in-flight events); 40 bits bound the *lifetime* event count of
     * one queue (1.1e12; allocEntry checks both).
     */
    static constexpr unsigned slotBits = 24;

    /**
     * A same-tick *follower* callback (second and later events of one
     * tick), chained through the entry slab in schedule order. The
     * first event of a tick lives inline in its Node, so ticks that
     * receive only one event — the dominant case for heterogeneous
     * completion times — never touch this slab.
     */
    struct Entry
    {
        EventFn fn;
        std::uint64_t seq = 0;
        std::uint32_t next = nil;
    };

    /** One batch of same-tick events: inline first + follower chain. */
    struct Node
    {
        Tick when = 0;
        std::uint64_t firstSeq = 0;
        EventFn first;
        std::uint32_t head = nil;
        std::uint32_t tail = nil;
        bool live = false;
    };

    /**
     * Heap key: trivially copyable so sifting compiles to plain
     * register moves. Ordering on (when, firstSeq) is FIFO across nodes
     * because firstSeq is unique and monotonic in node creation order.
     */
    struct Key
    {
        Tick when;
        std::uint64_t firstSeq;
        std::uint32_t node;

        bool
        before(const Key &o) const
        {
            return when != o.when ? when < o.when : firstSeq < o.firstSeq;
        }
    };

    /** Direct-mapped coalescing slot: the newest node for one tick. */
    struct TickRef
    {
        Tick when = 0;
        std::uint32_t node = nil;
    };

    static std::size_t
    tickHash(Tick when)
    {
        return static_cast<std::size_t>(
                   (when * 0x9e3779b97f4a7c15ULL) >> 40) &
               (tableSize - 1);
    }

    std::uint32_t
    allocEntry(Callback cb)
    {
        std::uint32_t e;
        if (entryFree.empty()) {
            e = static_cast<std::uint32_t>(entries.size());
            GPUCC_ASSERT(e < (1u << slotBits),
                         "event queue entry space exhausted");
            entries.emplace_back();
        } else {
            e = entryFree.back();
            entryFree.pop_back();
        }
        Entry &ent = entries[e];
        ent.fn = std::move(cb);
        ent.seq = nextSeq++;
        ent.next = nil;
        return e;
    }

    std::uint32_t
    allocNode()
    {
        if (nodeFree.empty()) {
            nodes.emplace_back();
            return static_cast<std::uint32_t>(nodes.size() - 1);
        }
        std::uint32_t n = nodeFree.back();
        nodeFree.pop_back();
        return n;
    }

    /** Panic (debug) or clamp (release) an event scheduled in the past. */
    Tick clampPastEvent(Tick when) const;

    /** Pop the minimum key off the node heap. */
    Key popTop();

    /**
     * Make the minimum node's chain the active chain: pop it, retire
     * the node (its chain is now owned by activeHead), and drop the
     * coalescing-table reference so later schedules at the same tick
     * start a fresh node that fires after this chain.
     */
    void activateTop();

    /** True while a popped node's events are still being fired. */
    bool
    draining() const
    {
        return activeFirstLive || activeHead != nil;
    }

    /**
     * Fire one event off the active batch: the inline first callback,
     * then the follower chain. Callbacks are moved out and their slots
     * recycled *before* invocation, so re-entrant schedule() calls see
     * a consistent queue (and may reuse the slot immediately).
     */
    void
    fireOne()
    {
        EventFn fn;
        if (activeFirstLive) {
            fn = std::move(activeFirst);
            activeFirstLive = false;
        } else {
            const std::uint32_t e = activeHead;
            Entry &ent = entries[e];
            activeHead = ent.next;
            fn = std::move(ent.fn);
            entryFree.push_back(e);
        }
        --numPending;
        ++fired;
        fn();
    }

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    /** Min-heap of batch nodes on (when, firstSeq). */
    std::vector<Key> keys;
    /** Callback slab; entries at free-listed indices are empty. */
    std::vector<Entry> entries;
    std::vector<std::uint32_t> entryFree;
    /** Batch-node slab. */
    std::vector<Node> nodes;
    std::vector<std::uint32_t> nodeFree;
    /** Direct-mapped tick → newest-node table (lossy by design). */
    std::vector<TickRef> table;
    /** Batch currently being drained (all events at activeWhen). */
    EventFn activeFirst;
    std::uint64_t activeFirstSeq = 0;
    bool activeFirstLive = false;
    std::uint32_t activeHead = nil;
    Tick activeWhen = 0;
    std::size_t numPending = 0;
    Tick current = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t fired = 0;
};

} // namespace gpucc::sim

#endif // GPUCC_SIM_EVENT_QUEUE_H

/**
 * @file
 * Global event queue driving the device simulation.
 *
 * Warps suspend on device operations and are resumed by events scheduled
 * at the operation completion tick. Events at equal ticks fire in
 * schedule order (FIFO), which keeps the simulation deterministic.
 */

#ifndef GPUCC_SIM_EVENT_QUEUE_H
#define GPUCC_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace gpucc::sim
{

/** Time-ordered callback queue. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p cb to run at absolute tick @p when (>= now()). */
    void schedule(Tick when, Callback cb);

    /** @return current simulated tick. */
    Tick now() const { return current; }

    /** Run events until the queue drains. @return final tick. */
    Tick run();

    /** Execute exactly one event. @return false when the queue is empty. */
    bool step();

    /**
     * Run events up to and including tick @p limit; later events remain
     * queued. Advances now() to at most @p limit.
     */
    void runUntil(Tick limit);

    /** @return true when no events are pending. */
    bool empty() const { return events.empty(); }

    /** Number of events executed since construction. */
    std::uint64_t executed() const { return fired; }

    /** Force the current tick forward (host-side idle time). */
    void advanceTo(Tick when);

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> events;
    Tick current = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t fired = 0;
};

} // namespace gpucc::sim

#endif // GPUCC_SIM_EVENT_QUEUE_H

/**
 * @file
 * Global event queue driving the device simulation.
 *
 * Warps suspend on device operations and are resumed by events scheduled
 * at the operation completion tick. Events at equal ticks fire in
 * schedule order (FIFO), which keeps the simulation deterministic.
 *
 * The queue is the simulator's hottest structure: every warp
 * instruction retires through at least one event. Two things keep it
 * cheap:
 *
 *  - callbacks are EventFn (small-buffer inline storage), so the
 *    common warp-resume capture (a Warp* plus a coroutine_handle)
 *    never touches the heap;
 *  - ordering is a hand-rolled 4-ary min-heap over 24-byte POD keys
 *    {when, seq, slot}; the callbacks themselves sit in a stable slab
 *    indexed by @c slot and recycled through a free list, so sifting
 *    moves trivially-copyable keys only, never the callables.
 */

#ifndef GPUCC_SIM_EVENT_QUEUE_H
#define GPUCC_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <vector>

#include "common/log.h"
#include "common/types.h"
#include "sim/event_fn.h"

namespace gpucc::metrics
{
class Registry;
} // namespace gpucc::metrics

namespace gpucc::sim
{

/** Time-ordered callback queue. */
class EventQueue
{
  public:
    using Callback = EventFn;

    /**
     * Schedule @p cb to run at absolute tick @p when.
     *
     * Scheduling in the past (@p when < now()) is a model bug: debug
     * builds panic, release builds clamp the event to now() so
     * simulated time still never runs backwards.
     */
    void
    schedule(Tick when, Callback cb)
    {
        if (when < current) [[unlikely]]
            when = clampPastEvent(when);
        std::uint64_t slot;
        if (freeSlots.empty()) {
            if (slots.empty()) {
                // One queue drives one whole device simulation; skip
                // the doubling ramp for the first few thousand events.
                keys.reserve(initialCapacity);
                slots.reserve(initialCapacity);
            }
            slot = slots.size();
            slots.push_back(std::move(cb));
            GPUCC_ASSERT(slot < (std::uint64_t(1) << slotBits),
                         "event queue slot space exhausted");
        } else {
            slot = freeSlots.back();
            freeSlots.pop_back();
            slots[slot] = std::move(cb);
        }
        GPUCC_ASSERT(nextSeq < (std::uint64_t(1) << (64 - slotBits)),
                     "event FIFO sequence space exhausted");
        keys.push_back(Key{when, (nextSeq++ << slotBits) | slot});
        siftUp(keys.size() - 1);
    }

    /** @return current simulated tick. */
    Tick now() const { return current; }

    /** Run events until the queue drains. @return final tick. */
    Tick run();

    /** Execute exactly one event. @return false when the queue is empty. */
    bool step();

    /**
     * Run events up to and including tick @p limit; later events remain
     * queued. Advances now() to at most @p limit.
     */
    void runUntil(Tick limit);

    /** @return true when no events are pending. */
    bool empty() const { return keys.empty(); }

    /** Number of events executed since construction. */
    std::uint64_t executed() const { return fired; }

    /** Number of events currently pending. */
    std::size_t pending() const { return keys.size(); }

    /** Force the current tick forward (host-side idle time). */
    void advanceTo(Tick when);

    /** Expose executed/pending as pull gauges in @p reg. */
    void registerMetrics(metrics::Registry &reg);

    /**
     * Pending events as (when, fifo-sequence) pairs in firing order —
     * the exact order run() would execute them. The sequence numbers
     * are raw (they include the slab slot in the low bits), so two
     * queues with identical histories produce identical lists; queues
     * that merely fire the same work in the same order may differ.
     * Diagnostic/verification use only (copies the key heap).
     */
    std::vector<std::pair<Tick, std::uint64_t>> pendingEvents() const;

  private:
    /** Initial reservation for the key heap and callback slab. */
    static constexpr std::size_t initialCapacity = 4096;

    /**
     * Low bits of Key::seqSlot holding the slab index; the upper
     * 64 - slotBits bits hold the FIFO sequence number. 24 bits bound
     * the *pending* event count (16M simultaneously in-flight events);
     * 40 bits bound the *lifetime* event count of one queue (1.1e12 —
     * about three weeks of simulation at current throughput; schedule()
     * checks both).
     */
    static constexpr unsigned slotBits = 24;

    /**
     * Heap key: 16 bytes, trivially copyable, so sifting compiles to
     * plain register moves. Ordering on (when, seqSlot) is FIFO within
     * a tick because the sequence occupies the high bits and is unique.
     */
    struct Key
    {
        Tick when;
        std::uint64_t seqSlot;

        bool
        before(const Key &o) const
        {
            return when != o.when ? when < o.when : seqSlot < o.seqSlot;
        }
    };

    /** Panic (debug) or clamp (release) an event scheduled in the past. */
    Tick clampPastEvent(Tick when) const;

    /** Pop the minimum key off the heap. */
    Key popTop();

    /**
     * Fire the event under @p k: the callback is moved out and its slot
     * recycled *before* invocation, so re-entrant schedule() calls see
     * a consistent queue (and may reuse the slot immediately).
     */
    void
    fire(const Key &k)
    {
        current = k.when;
        ++fired;
        const std::uint32_t slot =
            static_cast<std::uint32_t>(k.seqSlot & ((1u << slotBits) - 1));
        EventFn fn = std::move(slots[slot]);
        freeSlots.push_back(slot);
        fn();
    }

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    /** 4-ary min-heap on (when, seq); slot points into @c slots. */
    std::vector<Key> keys;
    /** Callback slab; entries at free-listed indices are empty. */
    std::vector<EventFn> slots;
    std::vector<std::uint32_t> freeSlots;
    Tick current = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t fired = 0;
};

} // namespace gpucc::sim

#endif // GPUCC_SIM_EVENT_QUEUE_H

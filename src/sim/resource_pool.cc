#include "sim/resource_pool.h"

#include <algorithm>
#include <functional>

#include "common/log.h"

namespace gpucc::sim
{

ResourcePool::ResourcePool(std::string name, unsigned servers)
    : poolName(std::move(name)), numServers(servers)
{
    GPUCC_ASSERT(servers >= 1, "pool %s needs >= 1 server",
                 poolName.c_str());
    if (numServers > inlineCapacity)
        heapFree.assign(numServers, 0);
}

Tick
ResourcePool::heapAcquireEarliest()
{
    std::pop_heap(heapFree.begin(), heapFree.end(), std::greater<Tick>());
    Tick earliest = heapFree.back();
    heapFree.pop_back();
    return earliest;
}

void
ResourcePool::heapRelease(Tick nextFree)
{
    heapFree.push_back(nextFree);
    std::push_heap(heapFree.begin(), heapFree.end(), std::greater<Tick>());
}

Tick
ResourcePool::peekStart(Tick now) const
{
    Tick earliest;
    if (numServers <= inlineCapacity)
        earliest = inlineFree[earliestInlineSlot()];
    else
        earliest = heapFree.front();
    return std::max(now, earliest);
}

std::vector<Tick>
ResourcePool::serverFreeTicks() const
{
    std::vector<Tick> out;
    out.reserve(numServers);
    if (numServers <= inlineCapacity) {
        out.assign(inlineFree.begin(), inlineFree.begin() + numServers);
    } else {
        out = heapFree;
    }
    std::sort(out.begin(), out.end());
    return out;
}

ResourcePool::State
ResourcePool::captureState() const
{
    return State{serverFreeTicks(), busy, queued, count};
}

void
ResourcePool::restoreState(const State &s)
{
    GPUCC_ASSERT(s.freeTicks.size() == numServers,
                 "pool %s: restoring %zu server timelines into %u servers",
                 poolName.c_str(), s.freeTicks.size(), numServers);
    if (numServers <= inlineCapacity) {
        // Which slot holds which tick is canonicalized away by
        // serverFreeTicks(); any assignment of the multiset is the
        // same pool.
        std::copy(s.freeTicks.begin(), s.freeTicks.end(),
                  inlineFree.begin());
    } else {
        heapFree = s.freeTicks;
        std::make_heap(heapFree.begin(), heapFree.end(),
                       std::greater<Tick>());
    }
    busy = s.busy;
    queued = s.queued;
    count = s.count;
}

void
ResourcePool::reset()
{
    inlineFree.fill(0);
    if (numServers > inlineCapacity)
        heapFree.assign(numServers, 0);
    busy = 0;
    queued = 0;
    count = 0;
}

} // namespace gpucc::sim

#include "sim/resource_pool.h"

#include <algorithm>

#include "common/log.h"

namespace gpucc::sim
{

ResourcePool::ResourcePool(std::string name, unsigned servers)
    : poolName(std::move(name)), numServers(servers)
{
    GPUCC_ASSERT(servers >= 1, "pool %s needs >= 1 server",
                 poolName.c_str());
    for (unsigned i = 0; i < numServers; ++i)
        free.push(0);
}

Reservation
ResourcePool::acquire(Tick now, Tick occupancy)
{
    Tick earliest = free.top();
    free.pop();
    Reservation r;
    r.serviceStart = std::max(now, earliest);
    r.serviceEnd = r.serviceStart + occupancy;
    free.push(r.serviceEnd);
    busy += occupancy;
    queued += r.serviceStart - now;
    ++count;
    return r;
}

Tick
ResourcePool::peekStart(Tick now) const
{
    return std::max(now, free.top());
}

void
ResourcePool::reset()
{
    while (!free.empty())
        free.pop();
    for (unsigned i = 0; i < numServers; ++i)
        free.push(0);
    busy = 0;
    queued = 0;
    count = 0;
}

} // namespace gpucc::sim

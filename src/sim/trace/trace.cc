#include "sim/trace/trace.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.h"

namespace gpucc::sim::trace
{

namespace
{

struct CatEntry
{
    const char *name;
    Cat cat;
};

constexpr CatEntry catTable[] = {
    {"kernel", Cat::Kernel}, {"warp", Cat::Warp},     {"cache", Cat::Cache},
    {"fu", Cat::Fu},         {"atomic", Cat::Atomic}, {"fault", Cat::Fault},
    {"link", Cat::Link},
};

} // namespace

std::uint32_t
parseCats(const std::string &list)
{
    std::uint32_t mask = 0;
    std::stringstream ss(list);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
        if (tok.empty())
            continue;
        if (tok == "all") {
            mask |= allCats;
            continue;
        }
        bool found = false;
        for (const auto &e : catTable) {
            if (tok == e.name) {
                mask |= static_cast<std::uint32_t>(e.cat);
                found = true;
                break;
            }
        }
        if (!found)
            GPUCC_FATAL("unknown trace category '%s' (valid: kernel, warp, "
                        "cache, fu, atomic, fault, link, all)",
                        tok.c_str());
    }
    return mask;
}

const char *
catName(Cat c)
{
    for (const auto &e : catTable)
        if (e.cat == c)
            return e.name;
    return "?";
}

Shard::Shard(std::uint32_t mask, std::string label_)
    : catMask(mask), label(std::move(label_)), cap(1u << 20)
{
}

void
Shard::nameRow(std::uint32_t tid, const std::string &name)
{
    rows.emplace(tid, name);
}

TraceSession::TraceSession(std::uint32_t mask, std::string path)
    : catMask(mask), outPath(std::move(path))
{
}

TraceSession::~TraceSession() = default;

Shard *
TraceSession::makeShard(std::string label)
{
    std::lock_guard<std::mutex> lock(mtx);
    shards.push_back(std::make_unique<Shard>(catMask, std::move(label)));
    return shards.back().get();
}

void
TraceSession::writeFile(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        GPUCC_FATAL("cannot open trace output '%s'", path.c_str());
    writeChromeTrace(f);
    f << "\n";
}

namespace
{

/** The process-wide session parsed from GPUCC_TRACE. */
struct GlobalTrace
{
    std::unique_ptr<TraceSession> session;

    GlobalTrace()
    {
        const char *env = std::getenv("GPUCC_TRACE");
        if (env == nullptr || *env == '\0')
            return;
        std::string spec(env);
        auto colon = spec.rfind(':');
        if (colon == std::string::npos || colon + 1 == spec.size())
            GPUCC_FATAL("GPUCC_TRACE must be 'categories:path' "
                        "(e.g. kernel,cache:out.json), got '%s'",
                        spec.c_str());
        std::uint32_t mask = parseCats(spec.substr(0, colon));
        if (mask == 0)
            GPUCC_FATAL("GPUCC_TRACE enables no categories: '%s'",
                        spec.c_str());
        session =
            std::make_unique<TraceSession>(mask, spec.substr(colon + 1));
    }

    ~GlobalTrace()
    {
        // Static-destruction-time flush: writes the trace even when the
        // program never calls flushGlobal() explicitly.
        if (session && !session->path().empty())
            session->writeFile(session->path());
    }
};

GlobalTrace &
globalTrace()
{
    static GlobalTrace g;
    return g;
}

} // namespace

TraceSession *
TraceSession::global()
{
    return globalTrace().session.get();
}

void
TraceSession::flushGlobal()
{
    TraceSession *s = global();
    if (s != nullptr && !s->path().empty())
        s->writeFile(s->path());
}

} // namespace gpucc::sim::trace

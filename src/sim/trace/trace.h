/**
 * @file
 * Deterministic simulation event tracer.
 *
 * A TraceSession holds the enabled category mask and a set of
 * TraceShards. Each shard belongs to exactly one Device (or one
 * link-layer endpoint) and is therefore written from exactly one
 * thread with no synchronization on the emit path — the same
 * per-shard-ownership contract the SweepRunner relies on. The only
 * lock in the layer guards shard creation and the final export.
 *
 * Zero cost when disabled: the Device keeps a null shard pointer by
 * default (the same pattern as the fault hooks in gpu/device.h), so
 * every hook is one predictable null-check. When a category is
 * disabled on an active shard, the hook is one load + mask test.
 *
 * Categories mirror the subsystems the paper observes: kernel
 * lifecycle, warp stalls, cache hits/misses/evictions, FU pipeline
 * occupancy, atomic-unit activity, fault activations, and ARQ link
 * frames. The exporter writes Chrome trace-event JSON (pid = device,
 * tid = timeline row) loadable in Perfetto / chrome://tracing;
 * timestamps are emitted in *cycles* (the simulator's natural unit).
 *
 * Enable process-wide via the environment:
 *     GPUCC_TRACE=kernel,warp,cache,link:out.json ./exfiltrate_key
 * Categories are comma-separated ("all" enables everything); the part
 * after the last ':' is the output path, written at process exit.
 */

#ifndef GPUCC_SIM_TRACE_TRACE_H
#define GPUCC_SIM_TRACE_TRACE_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"

namespace gpucc::sim::trace
{

/** Event category bits (GPUCC_TRACE names in lowercase). */
enum class Cat : std::uint32_t
{
    Kernel = 1u << 0, //!< kernel launch -> completion, block spans
    Warp = 1u << 1,   //!< warp stall/resume spans
    Cache = 1u << 2,  //!< const L1/L2 hit, miss, eviction instants
    Fu = 1u << 3,     //!< FU issue-port occupancy spans
    Atomic = 1u << 4, //!< atomic-unit transactions
    Fault = 1u << 5,  //!< fault-injector activations
    Link = 1u << 6,   //!< ARQ frame send / ack / retry / CRC reject
};

/** All categories. */
inline constexpr std::uint32_t allCats = 0x7f;

/** Parse a comma-separated category list ("kernel,cache" or "all").
 *  Unknown names are fatal (a typo silently tracing nothing is worse). */
std::uint32_t parseCats(const std::string &list);

/** Category bit -> GPUCC_TRACE name. */
const char *catName(Cat c);

/** One recorded event. */
struct Event
{
    std::string name;          //!< span / instant label
    const char *argKey = nullptr; //!< optional numeric argument name
    std::uint64_t argVal = 0;
    Tick ts = 0;               //!< start tick
    Tick dur = 0;              //!< duration in ticks (spans only)
    std::uint32_t tid = 0;     //!< timeline row within the shard
    Cat cat = Cat::Kernel;
    char phase = 'X';          //!< 'X' complete, 'i' instant, 'C' counter
};

/**
 * One device's (or link endpoint's) private event buffer. All emit
 * methods are called from the owning simulation thread only.
 */
class Shard
{
  public:
    /** @param mask Enabled categories. @param label Process name in the
     *  exported trace; shards are merged in label order, so labels
     *  also determine pid assignment (keep them unique). */
    Shard(std::uint32_t mask, std::string label);

    /** @return true when category @p c is recorded. The hot-path
     *  guard: hooks call wants() before building any event. */
    bool
    wants(Cat c) const
    {
        return (catMask & static_cast<std::uint32_t>(c)) != 0 &&
               events.size() < cap;
    }

    /** Record a [start, end) span on row @p tid. */
    void
    span(Cat c, std::uint32_t tid, std::string name, Tick start, Tick end,
         const char *argKey = nullptr, std::uint64_t argVal = 0)
    {
        Event e;
        e.name = std::move(name);
        e.argKey = argKey;
        e.argVal = argVal;
        e.ts = start;
        e.dur = end > start ? end - start : 0;
        e.tid = tid;
        e.cat = c;
        e.phase = 'X';
        push(std::move(e));
    }

    /** Record a point event on row @p tid. */
    void
    instant(Cat c, std::uint32_t tid, std::string name, Tick at,
            const char *argKey = nullptr, std::uint64_t argVal = 0)
    {
        Event e;
        e.name = std::move(name);
        e.argKey = argKey;
        e.argVal = argVal;
        e.ts = at;
        e.tid = tid;
        e.cat = c;
        e.phase = 'i';
        push(std::move(e));
    }

    /** Record a counter sample (rendered as a track graph). */
    void
    counter(Cat c, std::uint32_t tid, std::string name, Tick at,
            const char *seriesKey, std::uint64_t v)
    {
        Event e;
        e.name = std::move(name);
        e.argKey = seriesKey;
        e.argVal = v;
        e.ts = at;
        e.tid = tid;
        e.cat = c;
        e.phase = 'C';
        push(std::move(e));
    }

    /** Name timeline row @p tid (idempotent; first name wins). */
    void nameRow(std::uint32_t tid, const std::string &name);

    const std::string &shardLabel() const { return label; }
    const std::vector<Event> &recorded() const { return events; }
    const std::map<std::uint32_t, std::string> &rowNames() const
    {
        return rows;
    }

    /** Events not recorded because the buffer cap was reached. */
    std::uint64_t dropped() const { return droppedCount; }

    /** Retention cap (events per shard); settable before tracing. */
    void setCap(std::size_t n) { cap = n; }

    /** Current retention cap. */
    std::size_t capacity() const { return cap; }

  private:
    void
    push(Event e)
    {
        if (events.size() >= cap) {
            ++droppedCount;
            return;
        }
        events.push_back(std::move(e));
    }

    std::uint32_t catMask;
    std::string label;
    std::vector<Event> events;
    std::map<std::uint32_t, std::string> rows;
    std::size_t cap;
    std::uint64_t droppedCount = 0;
};

/** A set of shards plus the export configuration. */
class TraceSession
{
  public:
    /** @param mask Enabled categories. @param path Chrome-trace output
     *  written by writeChromeTrace() / at process exit for the global
     *  session ("" = caller exports explicitly). */
    explicit TraceSession(std::uint32_t mask, std::string path = "");
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** Enabled category mask. */
    std::uint32_t mask() const { return catMask; }

    /**
     * Create a shard named @p label. Thread-safe (sweep trials attach
     * from worker threads); the emit path on the returned shard is
     * lock-free. Pass a deterministic label (e.g. derived from the
     * trial index) when tracing parallel sweeps — export order is
     * label order, not creation order.
     */
    Shard *makeShard(std::string label);

    /**
     * Write all shards as one Chrome trace-event JSON. Shards are
     * ordered by label (ties broken by creation order) and assigned
     * pids 0..n-1, so the file is identical for any GPUCC_THREADS.
     */
    void writeChromeTrace(std::ostream &os) const;

    /** writeChromeTrace() into @p path (fatal on I/O failure). */
    void writeFile(const std::string &path) const;

    /** Export path configured at construction ("" = none). */
    const std::string &path() const { return outPath; }

    /**
     * The process-wide session configured by GPUCC_TRACE, or nullptr
     * when the variable is unset/empty. Parsed once; the session's
     * file is written at process exit.
     */
    static TraceSession *global();

    /** Write the global session's file now (idempotent; the exit hook
     *  rewrites it, so intermediate flushes are safe). */
    static void flushGlobal();

  private:
    std::uint32_t catMask;
    std::string outPath;
    mutable std::mutex mtx;
    std::vector<std::unique_ptr<Shard>> shards;
};

} // namespace gpucc::sim::trace

#endif // GPUCC_SIM_TRACE_TRACE_H

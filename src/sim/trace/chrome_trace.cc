/**
 * @file
 * Chrome trace-event JSON exporter for TraceSession.
 *
 * Output follows the trace-event format's "JSON Object Format":
 * {"traceEvents": [...], "displayTimeUnit": "ns", ...}. Each shard
 * becomes one pid (process); timeline rows become tids (threads);
 * process_name / thread_name metadata events label them. Timestamps
 * ("ts") are nominally microseconds in the format — we map one
 * simulated *cycle* to one displayed unit, so the Perfetto ruler reads
 * directly in cycles.
 */

#include <algorithm>
#include <vector>

#include "common/metrics/json_writer.h"
#include "sim/trace/trace.h"

namespace gpucc::sim::trace
{

namespace
{

void
writeCommonFields(metrics::JsonWriter &w, const Event &e, int pid)
{
    w.field("name", e.name);
    w.field("cat", catName(e.cat));
    w.field("ph", std::string(1, e.phase));
    w.field("ts", ticksToCyclesF(e.ts));
    if (e.phase == 'X')
        w.field("dur", ticksToCyclesF(e.dur));
    w.field("pid", pid);
    w.field("tid", static_cast<std::uint64_t>(e.tid));
}

void
writeMetadata(metrics::JsonWriter &w, const char *what, int pid,
              std::uint64_t tid, bool withTid, const std::string &name)
{
    w.beginObject();
    w.field("name", what);
    w.field("ph", "M");
    w.field("pid", pid);
    if (withTid)
        w.field("tid", tid);
    w.beginObject("args");
    w.field("name", name);
    w.endObject();
    w.endObject();
}

} // namespace

void
TraceSession::writeChromeTrace(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mtx);

    // pid assignment by label, not creation order, so parallel-sweep
    // traces are identical for any GPUCC_THREADS.
    std::vector<const Shard *> ordered;
    ordered.reserve(shards.size());
    for (const auto &s : shards)
        ordered.push_back(s.get());
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const Shard *a, const Shard *b) {
                         return a->shardLabel() < b->shardLabel();
                     });

    metrics::JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.beginArray("traceEvents");
    for (std::size_t pidIdx = 0; pidIdx < ordered.size(); ++pidIdx) {
        const Shard &s = *ordered[pidIdx];
        int pid = static_cast<int>(pidIdx);
        writeMetadata(w, "process_name", pid, 0, false, s.shardLabel());
        for (const auto &[tid, rowName] : s.rowNames())
            writeMetadata(w, "thread_name", pid, tid, true, rowName);
        for (const Event &e : s.recorded()) {
            w.beginObject();
            writeCommonFields(w, e, pid);
            if (e.argKey != nullptr) {
                w.beginObject("args");
                w.field(e.argKey, e.argVal);
                w.endObject();
            } else if (e.phase == 'C') {
                // Counter events need an args series even when unnamed.
                w.beginObject("args");
                w.field("value", e.argVal);
                w.endObject();
            }
            w.endObject();
        }
    }
    w.endArray();
    w.field("displayTimeUnit", "ns");
    w.beginObject("otherData");
    w.field("timeUnit", "cycles");
    std::uint64_t dropped = 0;
    for (const Shard *s : ordered)
        dropped += s->dropped();
    w.field("droppedEvents", dropped);
    w.field("shards", static_cast<std::uint64_t>(ordered.size()));
    w.endObject();
    w.endObject();
}

} // namespace gpucc::sim::trace

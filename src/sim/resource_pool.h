/**
 * @file
 * Contended-resource timeline model.
 *
 * A ResourcePool models a pipelined hardware resource with @c k parallel
 * servers (issue ports, dispatch slots, atomic units, cache ports).
 * A request arriving at tick @c now occupies the earliest-free server for
 * @c occupancy ticks; the wait for a free server is the queueing delay
 * that covert channels observe as contention. Because the resource is
 * modeled as a timeline rather than polled every cycle, multi-million
 * cycle experiments run in milliseconds while preserving queueing
 * behaviour.
 *
 * Every simulated instruction passes through at least two pools
 * (dispatch + FU port), and the real machine models all use tiny
 * server counts (1-2 per scheduler port, a handful per memory
 * partition). Small pools therefore keep their next-free ticks in a
 * fixed inline array scanned linearly — branch-predictable, no heap
 * traffic, no sift — and only pools wider than @c inlineCapacity fall
 * back to a heap-ordered vector.
 */

#ifndef GPUCC_SIM_RESOURCE_POOL_H
#define GPUCC_SIM_RESOURCE_POOL_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace gpucc::sim
{

/** Result of reserving a resource slot. */
struct Reservation
{
    Tick serviceStart = 0; //!< when the request reached a server
    Tick serviceEnd = 0;   //!< when the server becomes free again

    /** Queueing delay experienced before service. */
    Tick waited(Tick issued) const { return serviceStart - issued; }
};

/** A k-server resource with per-request occupancy. */
class ResourcePool
{
  public:
    /** Widest pool served by the inline next-free array. */
    static constexpr unsigned inlineCapacity = 8;

    /**
     * @param name Debug name.
     * @param servers Number of parallel servers (>= 1).
     */
    ResourcePool(std::string name, unsigned servers);

    /**
     * Reserve the earliest-available server.
     *
     * @param now Tick the request is issued.
     * @param occupancy Ticks of server time the request consumes.
     * @return Reservation with service start/end ticks.
     */
    Reservation
    acquire(Tick now, Tick occupancy)
    {
        Tick earliest;
        if (numServers <= inlineCapacity) [[likely]] {
            unsigned slot = earliestInlineSlot();
            earliest = inlineFree[slot];
            Tick start = earliest > now ? earliest : now;
            inlineFree[slot] = start + occupancy;
            return finishAcquire(now, occupancy, start);
        }
        earliest = heapAcquireEarliest();
        Tick start = earliest > now ? earliest : now;
        heapRelease(start + occupancy);
        return finishAcquire(now, occupancy, start);
    }

    /**
     * Earliest tick at which a request issued at @p now would begin
     * service, without reserving anything.
     */
    Tick peekStart(Tick now) const;

    /** Total server-ticks consumed so far (utilization numerator). */
    Tick busyTicks() const { return busy; }

    /** Number of requests served. */
    std::uint64_t requests() const { return count; }

    /** Sum of queueing delays over all requests. */
    Tick totalQueueing() const { return queued; }

    /** Debug name. */
    const std::string &name() const { return poolName; }

    /** Number of parallel servers. */
    unsigned servers() const { return numServers; }

    /** Reset all server timelines and statistics. */
    void reset();

    /**
     * Next-free tick of every server, sorted ascending. The sort
     * canonicalizes server identity (which inline slot served a request
     * is an implementation detail); the multiset of free ticks is the
     * pool's complete timeline state. Diagnostic/verification use.
     */
    std::vector<Tick> serverFreeTicks() const;

    /**
     * Complete mutable state, for device snapshot/fork. The free-tick
     * multiset plus the three statistics counters fully determine every
     * future acquire() and every digest the pool feeds.
     */
    struct State
    {
        std::vector<Tick> freeTicks; //!< sorted, one per server
        Tick busy = 0;
        Tick queued = 0;
        std::uint64_t count = 0;
    };

    /** Capture the timeline state (name/servers are not included). */
    State captureState() const;

    /** Restore state captured from a same-width pool. */
    void restoreState(const State &s);

  private:
    /** Index of the server with the smallest next-free tick. */
    unsigned
    earliestInlineSlot() const
    {
        unsigned best = 0;
        for (unsigned i = 1; i < numServers; ++i) {
            if (inlineFree[i] < inlineFree[best])
                best = i;
        }
        return best;
    }

    Reservation
    finishAcquire(Tick now, Tick occupancy, Tick start)
    {
        busy += occupancy;
        queued += start - now;
        ++count;
        return Reservation{start, start + occupancy};
    }

    /** Pop the minimum next-free tick off the wide-pool heap. */
    Tick heapAcquireEarliest();
    /** Push a next-free tick back onto the wide-pool heap. */
    void heapRelease(Tick nextFree);

    std::string poolName;
    unsigned numServers;
    /** Next-free tick per server; valid slots [0, numServers). */
    std::array<Tick, inlineCapacity> inlineFree{};
    /** Min-heap of next-free ticks for pools wider than the array. */
    std::vector<Tick> heapFree;
    Tick busy = 0;
    Tick queued = 0;
    std::uint64_t count = 0;
};

} // namespace gpucc::sim

#endif // GPUCC_SIM_RESOURCE_POOL_H

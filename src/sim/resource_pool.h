/**
 * @file
 * Contended-resource timeline model.
 *
 * A ResourcePool models a pipelined hardware resource with @c k parallel
 * servers (issue ports, dispatch slots, atomic units, cache ports).
 * A request arriving at tick @c now occupies the earliest-free server for
 * @c occupancy ticks; the wait for a free server is the queueing delay
 * that covert channels observe as contention. Because the resource is
 * modeled as a timeline rather than polled every cycle, multi-million
 * cycle experiments run in milliseconds while preserving queueing
 * behaviour.
 */

#ifndef GPUCC_SIM_RESOURCE_POOL_H
#define GPUCC_SIM_RESOURCE_POOL_H

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "common/types.h"

namespace gpucc::sim
{

/** Result of reserving a resource slot. */
struct Reservation
{
    Tick serviceStart = 0; //!< when the request reached a server
    Tick serviceEnd = 0;   //!< when the server becomes free again

    /** Queueing delay experienced before service. */
    Tick waited(Tick issued) const { return serviceStart - issued; }
};

/** A k-server resource with per-request occupancy. */
class ResourcePool
{
  public:
    /**
     * @param name Debug name.
     * @param servers Number of parallel servers (>= 1).
     */
    ResourcePool(std::string name, unsigned servers);

    /**
     * Reserve the earliest-available server.
     *
     * @param now Tick the request is issued.
     * @param occupancy Ticks of server time the request consumes.
     * @return Reservation with service start/end ticks.
     */
    Reservation acquire(Tick now, Tick occupancy);

    /**
     * Earliest tick at which a request issued at @p now would begin
     * service, without reserving anything.
     */
    Tick peekStart(Tick now) const;

    /** Total server-ticks consumed so far (utilization numerator). */
    Tick busyTicks() const { return busy; }

    /** Number of requests served. */
    std::uint64_t requests() const { return count; }

    /** Sum of queueing delays over all requests. */
    Tick totalQueueing() const { return queued; }

    /** Debug name. */
    const std::string &name() const { return poolName; }

    /** Reset all server timelines and statistics. */
    void reset();

  private:
    std::string poolName;
    unsigned numServers;
    /** Min-heap of next-free ticks, one entry per server. */
    std::priority_queue<Tick, std::vector<Tick>, std::greater<Tick>> free;
    Tick busy = 0;
    Tick queued = 0;
    std::uint64_t count = 0;
};

} // namespace gpucc::sim

#endif // GPUCC_SIM_RESOURCE_POOL_H

/**
 * @file
 * Deterministic parallel experiment execution.
 *
 * SweepRunner fans independent trials of an experiment across hardware
 * threads. The contract that makes parallel results bit-identical to
 * serial ones:
 *
 *  - each trial constructs every piece of mutable simulation state it
 *    touches (Device, HostContext, Rng) inside its own callable —
 *    nothing simulated is shared between trials;
 *  - a trial's seed is a pure function of (seedBase, trialIndex), so
 *    it cannot depend on scheduling order or thread count;
 *  - results are written into the slot owned by the trial's index and
 *    returned in index order.
 *
 * Thread count comes from the GPUCC_THREADS environment variable
 * (default: hardware concurrency); GPUCC_THREADS=1 runs inline on the
 * caller with no threads spawned, i.e. exactly the serial program.
 */

#ifndef GPUCC_SIM_EXEC_SWEEP_RUNNER_H
#define GPUCC_SIM_EXEC_SWEEP_RUNNER_H

#include <cstdint>
#include <type_traits>
#include <vector>

#include "obs/profiler.h"
#include "sim/exec/thread_pool.h"

namespace gpucc::sim::exec
{

/** SplitMix64 finalizer: a bijective 64-bit mix. */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Per-trial seed derivation.
 *
 * The naive @c seedBase ^ trialIndex collides badly across experiments:
 * bases 1 and 2 share seeds as soon as trial indices 3 and 0 meet
 * (1^3 == 2^0 == 2), correlating supposedly independent experiments.
 * Mixing the index through SplitMix64 first pushes any (base, index)
 * grid collision out to 2^-64 coincidences (exec_test sweeps a grid to
 * demonstrate both properties).
 */
constexpr std::uint64_t
deriveSeed(std::uint64_t seedBase, std::uint64_t trialIndex)
{
    return splitmix64(seedBase + splitmix64(trialIndex));
}

/** Parallel runner for independent simulation trials and sweeps. */
class SweepRunner
{
  public:
    /** @param threadCount Workers; 0 = GPUCC_THREADS / hardware. */
    explicit SweepRunner(unsigned threadCount = 0) : pool(threadCount) {}

    /** @return worker count in use. */
    unsigned threads() const { return pool.threads(); }

    /**
     * Attach a run-scale phase profiler (non-owning; null detaches).
     * runTrialsFrom() bills its serial boot to the "boot" phase, and
     * every trial body is billed to the "cell" phase through a
     * per-trial profiler merged in trial-index order — so the merged
     * totals are independent of worker count and scheduling. The
     * profiler is touched only on the caller's thread outside the
     * parallel region; trial bodies write their own slots.
     */
    void attachProfiler(obs::Profiler *p) { prof = p; }

    /**
     * Run @p fn(trialIndex, seed) for trialIndex in [0, n), with seed
     * = deriveSeed(@p seedBase, trialIndex). Returns results in trial
     * order. The result type must be default-constructible and
     * move-assignable; @p fn must not touch state shared with other
     * trials.
     */
    template <typename Fn>
    auto
    runTrials(std::size_t n, std::uint64_t seedBase, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, std::size_t,
                                            std::uint64_t>>
    {
        using R = std::invoke_result_t<Fn &, std::size_t, std::uint64_t>;
        std::vector<R> out(n);
        if (prof == nullptr) {
            pool.forEachIndex(n, [&](std::size_t i) {
                out[i] = fn(i, deriveSeed(seedBase, i));
            });
            return out;
        }
        std::vector<obs::Profiler> cells(n);
        pool.forEachIndex(n, [&](std::size_t i) {
            obs::PhaseScope ps(&cells[i], obs::phase::kCell);
            out[i] = fn(i, deriveSeed(seedBase, i));
        });
        for (const auto &c : cells)
            prof->merge(c);
        return out;
    }

    /**
     * Boot a shared prototype once, then run trials against it:
     * @p boot() runs serially on the caller and its result — typically
     * a device snapshot or channel checkpoint, i.e. expensive
     * boot + calibration work — is handed to every
     * @p fn(trialIndex, seed, prototype) as a const reference. Each
     * trial forks its own mutable simulation state from the prototype
     * (Device::fork / LaunchPerBitChannel::restore) instead of
     * re-running the boot, which is what makes dense multi-factor
     * sweeps affordable. Determinism contract is runTrials()'s; the
     * prototype must be treated as immutable (snapshot payloads are).
     */
    template <typename Boot, typename Fn>
    auto
    runTrialsFrom(Boot &&boot, std::size_t n, std::uint64_t seedBase,
                  Fn &&fn)
    {
        auto proto = [&] {
            // The prototype type is opaque here, so the boot cost is
            // wall-only; channels bill their own calibrate/boot cycles.
            obs::PhaseScope ps(prof, obs::phase::kBoot);
            return boot();
        }();
        using R = std::invoke_result_t<Fn &, std::size_t, std::uint64_t,
                                       const decltype(proto) &>;
        const auto &shared = proto;
        std::vector<R> out(n);
        if (prof == nullptr) {
            pool.forEachIndex(n, [&](std::size_t i) {
                out[i] = fn(i, deriveSeed(seedBase, i), shared);
            });
            return out;
        }
        std::vector<obs::Profiler> cells(n);
        pool.forEachIndex(n, [&](std::size_t i) {
            obs::PhaseScope ps(&cells[i], obs::phase::kCell);
            out[i] = fn(i, deriveSeed(seedBase, i), shared);
        });
        for (const auto &c : cells)
            prof->merge(c);
        return out;
    }

    /**
     * Run @p fn(config) once per entry of @p configs and return the
     * results in config order. Same independence requirements as
     * runTrials(); seeding, if any, must be carried inside each config.
     */
    template <typename Config, typename Fn>
    auto
    runSweep(const std::vector<Config> &configs, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, const Config &>>
    {
        using R = std::invoke_result_t<Fn &, const Config &>;
        std::vector<R> out(configs.size());
        if (prof == nullptr) {
            pool.forEachIndex(configs.size(), [&](std::size_t i) {
                out[i] = fn(configs[i]);
            });
            return out;
        }
        std::vector<obs::Profiler> cells(configs.size());
        pool.forEachIndex(configs.size(), [&](std::size_t i) {
            obs::PhaseScope ps(&cells[i], obs::phase::kCell);
            out[i] = fn(configs[i]);
        });
        for (const auto &c : cells)
            prof->merge(c);
        return out;
    }

  private:
    ThreadPool pool;
    obs::Profiler *prof = nullptr;
};

} // namespace gpucc::sim::exec

#endif // GPUCC_SIM_EXEC_SWEEP_RUNNER_H

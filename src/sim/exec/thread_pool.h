/**
 * @file
 * Statically-partitioned thread pool for independent simulations.
 *
 * Every paper figure is assembled from dozens of *independent* device
 * simulations (one Device + hosts + RNG per trial), so the execution
 * layer needs no shared simulation state, no work stealing, and no
 * locks on the trial path: index i of a job is statically assigned to
 * worker i % threads() and workers only ever write results into
 * disjoint slots owned by the caller. Results are therefore
 * bit-identical for any thread count, including 1 (which runs inline
 * on the caller and spawns nothing).
 *
 * The worker count defaults to the GPUCC_THREADS environment variable,
 * falling back to std::thread::hardware_concurrency().
 */

#ifndef GPUCC_SIM_EXEC_THREAD_POOL_H
#define GPUCC_SIM_EXEC_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gpucc::sim::exec
{

/** Fixed set of workers executing statically-assigned index ranges. */
class ThreadPool
{
  public:
    /**
     * @param threadCount Worker count; 0 means defaultThreads().
     *
     * A pool of one worker spawns no threads at all: jobs run inline
     * on the calling thread, making single-threaded execution exactly
     * the serial program.
     */
    explicit ThreadPool(unsigned threadCount = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return number of workers (>= 1). */
    unsigned threads() const { return workerCount; }

    /**
     * Run @p body(i) for every i in [0, n), index i on worker
     * i % threads() (static round-robin partition; no stealing).
     * Blocks until all indices completed. Exceptions are isolated per
     * index: a throwing body never prevents any other index from
     * running (a failed sweep cell is one failed cell, not a skipped
     * share), and after the batch the exception from the *lowest
     * failed index* is rethrown — deterministic at any thread count.
     * Callers that must record per-cell failures instead of aborting
     * the batch catch inside the body (see svc::runCell).
     */
    void forEachIndex(std::size_t n,
                      const std::function<void(std::size_t)> &body);

    /**
     * Worker count implied by the environment: GPUCC_THREADS if set,
     * else std::thread::hardware_concurrency(), never less than 1.
     * A GPUCC_THREADS value that is zero, negative, non-numeric or
     * absurdly large is a configuration error and fails fast with a
     * clear message (GPUCC_FATAL) instead of silently running at some
     * other width.
     */
    static unsigned defaultThreads();

  private:
    void workerMain(unsigned id);

    unsigned workerCount;
    std::vector<std::thread> workers;

    std::mutex mtx;
    std::condition_variable wake;
    std::condition_variable done;
    const std::function<void(std::size_t)> *job = nullptr;
    std::size_t jobSize = 0;
    std::uint64_t generation = 0;
    unsigned running = 0;
    bool stopping = false;
    /** One slot per worker so the rethrown error is deterministic:
     *  each worker keeps its first (lowest-index) exception, and
     *  forEachIndex rethrows the globally lowest failed index. */
    std::vector<std::exception_ptr> errors;
    std::vector<std::size_t> errorIndices;
};

} // namespace gpucc::sim::exec

#endif // GPUCC_SIM_EXEC_THREAD_POOL_H

#include "sim/exec/thread_pool.h"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/log.h"

namespace gpucc::sim::exec
{

namespace
{
/** Sanity ceiling for GPUCC_THREADS: far above any real machine, low
 *  enough to catch "GPUCC_THREADS=100000" typos before the pool tries
 *  to spawn them. */
constexpr unsigned kMaxThreads = 4096;
} // namespace

unsigned
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("GPUCC_THREADS")) {
        // A malformed thread count is a configuration error, not a
        // preference: silently running at hardware concurrency when
        // the user asked for "0" (or a typo) makes sweep results
        // unreproducible in exactly the runs someone pinned the
        // thread count for. Reject loudly instead.
        errno = 0;
        char *end = nullptr;
        const long long v = std::strtoll(env, &end, 10);
        if (*env == '\0' || end == env || *end != '\0')
            GPUCC_FATAL("GPUCC_THREADS='%s' is not an integer "
                        "(want a positive worker count, e.g. "
                        "GPUCC_THREADS=4)",
                        env);
        if (v <= 0)
            GPUCC_FATAL("GPUCC_THREADS=%lld must be >= 1 (every pool "
                        "needs at least the calling thread)",
                        v);
        if (errno == ERANGE || v > kMaxThreads)
            GPUCC_FATAL("GPUCC_THREADS='%s' is out of range (max %u)",
                        env, kMaxThreads);
        return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threadCount)
    : workerCount(threadCount != 0 ? threadCount : defaultThreads())
{
    errors.resize(workerCount);
    errorIndices.resize(workerCount, SIZE_MAX);
    if (workerCount == 1)
        return; // inline execution, no threads
    workers.reserve(workerCount);
    for (unsigned id = 0; id < workerCount; ++id)
        workers.emplace_back([this, id] { workerMain(id); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    wake.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::workerMain(unsigned id)
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)> *body;
        std::size_t n;
        {
            std::unique_lock<std::mutex> lock(mtx);
            wake.wait(lock,
                      [&] { return stopping || generation != seen; });
            if (stopping)
                return;
            seen = generation;
            body = job;
            n = jobSize;
        }
        // Per-index isolation: one throwing body must not starve the
        // rest of this worker's share — a sweep cell that fails is one
        // failed cell, not a third of the grid silently skipped. The
        // first exception (lowest index on this worker) is kept for
        // the deterministic rethrow in forEachIndex().
        for (std::size_t i = id; i < n; i += workerCount) {
            try {
                (*body)(i);
            } catch (...) {
                if (!errors[id]) {
                    errors[id] = std::current_exception();
                    errorIndices[id] = i;
                }
            }
        }
        {
            std::lock_guard<std::mutex> lock(mtx);
            if (--running == 0)
                done.notify_all();
        }
    }
}

void
ThreadPool::forEachIndex(std::size_t n,
                         const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (workerCount == 1) {
        // Inline path: identical isolation contract to the threaded
        // one — every index runs, the first failure is rethrown after.
        std::exception_ptr first;
        for (std::size_t i = 0; i < n; ++i) {
            try {
                body(i);
            } catch (...) {
                if (!first)
                    first = std::current_exception();
            }
        }
        if (first)
            std::rethrow_exception(first);
        return;
    }
    {
        std::unique_lock<std::mutex> lock(mtx);
        job = &body;
        jobSize = n;
        running = workerCount;
        ++generation;
    }
    wake.notify_all();
    {
        std::unique_lock<std::mutex> lock(mtx);
        done.wait(lock, [&] { return running == 0; });
        job = nullptr;
    }
    // Deterministic rethrow: of all failed indices, the globally
    // lowest one wins, independent of worker scheduling.
    std::exception_ptr err;
    std::size_t errAt = SIZE_MAX;
    for (unsigned w = 0; w < workerCount; ++w) {
        if (errors[w] && errorIndices[w] < errAt) {
            err = errors[w];
            errAt = errorIndices[w];
        }
    }
    for (auto &clear : errors)
        clear = nullptr;
    if (err)
        std::rethrow_exception(err);
}

} // namespace gpucc::sim::exec

#include "sim/exec/thread_pool.h"

#include <cstdlib>
#include <string>

#include "common/log.h"

namespace gpucc::sim::exec
{

unsigned
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("GPUCC_THREADS")) {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1)
            return static_cast<unsigned>(v);
        GPUCC_WARN("ignoring GPUCC_THREADS='%s' (want a positive integer)",
                   env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threadCount)
    : workerCount(threadCount != 0 ? threadCount : defaultThreads())
{
    errors.resize(workerCount);
    if (workerCount == 1)
        return; // inline execution, no threads
    workers.reserve(workerCount);
    for (unsigned id = 0; id < workerCount; ++id)
        workers.emplace_back([this, id] { workerMain(id); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    wake.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::workerMain(unsigned id)
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)> *body;
        std::size_t n;
        {
            std::unique_lock<std::mutex> lock(mtx);
            wake.wait(lock,
                      [&] { return stopping || generation != seen; });
            if (stopping)
                return;
            seen = generation;
            body = job;
            n = jobSize;
        }
        try {
            for (std::size_t i = id; i < n; i += workerCount)
                (*body)(i);
        } catch (...) {
            errors[id] = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mtx);
            if (--running == 0)
                done.notify_all();
        }
    }
}

void
ThreadPool::forEachIndex(std::size_t n,
                         const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (workerCount == 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    {
        std::unique_lock<std::mutex> lock(mtx);
        job = &body;
        jobSize = n;
        running = workerCount;
        ++generation;
    }
    wake.notify_all();
    {
        std::unique_lock<std::mutex> lock(mtx);
        done.wait(lock, [&] { return running == 0; });
        job = nullptr;
    }
    for (auto &e : errors) {
        if (e) {
            std::exception_ptr err = e;
            for (auto &clear : errors)
                clear = nullptr;
            std::rethrow_exception(err);
        }
    }
}

} // namespace gpucc::sim::exec

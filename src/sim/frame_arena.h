/**
 * @file
 * Thread-local arena for coroutine frames and other per-warp objects.
 *
 * Every simulated warp instruction runs inside a coroutine whose frame
 * the compiler allocates on the heap, and every launch-per-bit symbol
 * creates and destroys a fresh set of warp frames. Routing those
 * through the global allocator costs a malloc/free pair per frame and
 * scatters frames across the heap; at thousands of frames per
 * transmitted bit this dominates cache behaviour of the hot path.
 *
 * The arena replaces that with resource_pool-style free lists: blocks
 * are binned by size (64-byte granularity), freed blocks push onto the
 * owning thread's per-bin free list, and fresh blocks are carved from
 * large slabs. Warp churn therefore recycles the same few dozen blocks
 * — hot in cache, zero allocator traffic after warm-up.
 *
 * Lifetime rules:
 *  - allocate() and deallocate() must be called on the same thread
 *    (frames are confined to the thread simulating their device; the
 *    sweep runner runs each cell to completion on one pool thread);
 *  - slabs are never returned while the thread lives, so pointers stay
 *    valid for the thread's lifetime; everything is released when the
 *    thread exits (after the last device on it is destroyed);
 *  - blocks larger than the largest bin fall back to the global heap.
 */

#ifndef GPUCC_SIM_FRAME_ARENA_H
#define GPUCC_SIM_FRAME_ARENA_H

#include <cstddef>
#include <cstdint>

namespace gpucc::sim
{

/** Counters for the calling thread's arena (tests and benches). */
struct FrameArenaStats
{
    std::uint64_t allocs = 0;        //!< binned allocations served
    std::uint64_t reuses = 0;        //!< ... of which from a free list
    std::uint64_t heapFallbacks = 0; //!< oversized, sent to the heap
    std::uint64_t slabBytes = 0;     //!< slab memory owned by the thread
};

/** Size-binned thread-local frame allocator. */
class FrameArena
{
  public:
    /** Allocate @p bytes (any alignment up to 16). */
    static void *allocate(std::size_t bytes);

    /** Return a block obtained from allocate() on this thread. */
    static void deallocate(void *p) noexcept;

    /** Counters for the calling thread. */
    static FrameArenaStats stats();
};

} // namespace gpucc::sim

#endif // GPUCC_SIM_FRAME_ARENA_H

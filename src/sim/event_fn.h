/**
 * @file
 * Small-buffer-optimized event callback.
 *
 * Every event on the simulator hot path captures at most a couple of
 * raw pointers (a Warp* plus a coroutine_handle for the warp-resume
 * case), so the type-erased callback can live entirely inside the
 * queue entry: no heap allocation, no virtual dispatch, one indirect
 * call through a function pointer whose body is the inlined lambda.
 *
 * Callables that are trivially copyable, trivially destructible, and
 * no larger than @c inlineSize are stored in-place. Anything bigger
 * (or with a nontrivial destructor) falls back to a single heap node;
 * that path exists for generality but is never taken by the device
 * model itself.
 */

#ifndef GPUCC_SIM_EVENT_FN_H
#define GPUCC_SIM_EVENT_FN_H

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace gpucc::sim
{

/** Move-only type-erased callback with inline storage. */
class EventFn
{
  public:
    /** Bytes of in-place capture storage (three pointers' worth). */
    static constexpr std::size_t inlineSize = 24;

    EventFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn>>>
    EventFn(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
            invokeFn = [](void *p) { (*static_cast<Fn *>(p))(); };
        } else {
            auto *node = new HeapNode<Fn>{std::forward<F>(f)};
            std::memcpy(buf, &node, sizeof(node));
            invokeFn = &heapInvoke;
        }
    }

    EventFn(EventFn &&other) noexcept { moveFrom(other); }

    EventFn &
    operator=(EventFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    /** Invoke the stored callable (must be non-empty). */
    void operator()() { invokeFn(buf); }

    /** @return true when a callable is stored. */
    explicit operator bool() const { return invokeFn != nullptr; }

    /** @return true when @p Fn would be stored without allocating. */
    template <typename Fn>
    static constexpr bool
    storedInline()
    {
        return fitsInline<std::decay_t<Fn>>();
    }

  private:
    struct HeapNodeBase
    {
        virtual void call() = 0;
        virtual ~HeapNodeBase() = default;
    };
    template <typename Fn>
    struct HeapNode final : HeapNodeBase
    {
        Fn fn;
        explicit HeapNode(Fn f) : fn(std::move(f)) {}
        void call() override { fn(); }
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineSize &&
               alignof(Fn) <= alignof(void *) &&
               std::is_trivially_copyable_v<Fn> &&
               std::is_trivially_destructible_v<Fn>;
    }

    static void
    heapInvoke(void *p)
    {
        HeapNodeBase *node;
        std::memcpy(&node, p, sizeof(node));
        node->call();
    }

    void
    moveFrom(EventFn &other) noexcept
    {
        // Inline callables are trivially copyable by construction, and
        // the heap case only needs its node pointer carried over.
        std::memcpy(buf, other.buf, inlineSize);
        invokeFn = other.invokeFn;
        other.invokeFn = nullptr;
    }

    void
    reset() noexcept
    {
        if (invokeFn == &heapInvoke) {
            HeapNodeBase *node;
            std::memcpy(&node, buf, sizeof(node));
            delete node;
        }
        invokeFn = nullptr;
    }

    // Zero-initialized so whole-buffer relocation never reads
    // indeterminate bytes (keeps -Wmaybe-uninitialized quiet too).
    alignas(void *) unsigned char buf[inlineSize] = {};
    void (*invokeFn)(void *) = nullptr;
};

} // namespace gpucc::sim

#endif // GPUCC_SIM_EVENT_FN_H

/**
 * @file
 * Interfering workloads with Rodinia-like resource signatures
 * (Section 8 evaluation).
 *
 * The paper runs Rodinia benchmarks on a third stream to disturb the
 * covert channel. What matters to the channel is each workload's
 * resource signature, so the factories here synthesize kernels that
 * stress the same resources the Rodinia applications do:
 *
 *  - "heartwall"-like: walks constant memory (collides with the L1/L2
 *    constant-cache channels);
 *  - "hotspot"-like: compute-bound on SP/SFU units;
 *  - "srad"-like: claims shared memory (collides with the exclusive
 *    co-location resource requests);
 *  - "backprop"-like: streams global memory.
 */

#ifndef GPUCC_WORKLOADS_INTERFERENCE_H
#define GPUCC_WORKLOADS_INTERFERENCE_H

#include <vector>

#include "gpu/arch_params.h"
#include "gpu/device.h"
#include "gpu/kernel.h"

namespace gpucc::workloads
{

/** Shape of an interfering workload. */
struct WorkloadSpec
{
    unsigned blocks = 4;
    unsigned threadsPerBlock = 128;
    unsigned iterations = 400; //!< main-loop trip count
};

/** Constant-memory walker ("Heart Wall"): touches many constant sets. */
gpu::KernelLaunch makeConstantMemoryWorkload(gpu::Device &dev,
                                             const WorkloadSpec &spec);

/** Compute-bound kernel ("HotSpot"): saturates SP and SFU issue. */
gpu::KernelLaunch makeComputeWorkload(const WorkloadSpec &spec);

/** Shared-memory user ("SRAD"): claims @p smemBytes per block. */
gpu::KernelLaunch makeSharedMemoryWorkload(const WorkloadSpec &spec,
                                           std::size_t smemBytes);

/** Global-memory streamer ("Backprop"): strided loads and stores. */
gpu::KernelLaunch makeStreamingWorkload(gpu::Device &dev,
                                        const WorkloadSpec &spec);

/**
 * A duty-cycled constant-memory walker restricted to L1 sets
 * [@p setBegin, @p setEnd): the adversarial neighbor the Section 8
 * "idle resource discovery" defense-evasion scenario needs — it hammers
 * specific sets in bursts while leaving the others quiet.
 */
gpu::KernelLaunch makeSetTargetedConstWorkload(gpu::Device &dev,
                                               const WorkloadSpec &spec,
                                               unsigned setBegin,
                                               unsigned setEnd,
                                               Cycle idleCyclesPerBurst =
                                                   3000);

/** The full mix used by the Section 8 experiment. */
std::vector<gpu::KernelLaunch> makeRodiniaLikeMix(gpu::Device &dev,
                                                  const WorkloadSpec &spec);

} // namespace gpucc::workloads

#endif // GPUCC_WORKLOADS_INTERFERENCE_H

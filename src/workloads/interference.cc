#include "workloads/interference.h"

#include "gpu/warp_ctx.h"

namespace gpucc::workloads
{

gpu::KernelLaunch
makeConstantMemoryWorkload(gpu::Device &dev, const WorkloadSpec &spec)
{
    // An 8 KB constant table walked with a 64 B stride touches every L1
    // constant-cache set repeatedly — this is the workload class that
    // actually collides with the cache channels.
    constexpr std::size_t tableBytes = 8 * 1024;
    Addr base = dev.allocConst(tableBytes, 4096);
    std::vector<Addr> addrs;
    for (std::size_t off = 0; off < tableBytes; off += 64)
        addrs.push_back(base + off);

    gpu::KernelLaunch k;
    k.name = "heartwall-like";
    k.config.gridBlocks = spec.blocks;
    k.config.threadsPerBlock = spec.threadsPerBlock;
    unsigned iters = spec.iterations;
    k.body = [addrs, iters](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (ctx.warpInBlock() == 0) {
            for (unsigned i = 0; i < iters / 8; ++i)
                co_await ctx.constLoadSeq(addrs);
        } else {
            for (unsigned i = 0; i < iters; ++i)
                co_await ctx.op(gpu::OpClass::FMul);
        }
        co_return;
    };
    return k;
}

gpu::KernelLaunch
makeComputeWorkload(const WorkloadSpec &spec)
{
    gpu::KernelLaunch k;
    k.name = "hotspot-like";
    k.config.gridBlocks = spec.blocks;
    k.config.threadsPerBlock = spec.threadsPerBlock;
    unsigned iters = spec.iterations;
    k.body = [iters](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        for (unsigned i = 0; i < iters; ++i) {
            co_await ctx.op(gpu::OpClass::FAdd);
            co_await ctx.op(gpu::OpClass::FMul);
            if (i % 4 == 0)
                co_await ctx.op(gpu::OpClass::Sinf);
        }
        co_return;
    };
    return k;
}

gpu::KernelLaunch
makeSharedMemoryWorkload(const WorkloadSpec &spec, std::size_t smemBytes)
{
    gpu::KernelLaunch k;
    k.name = "srad-like";
    k.config.gridBlocks = spec.blocks;
    k.config.threadsPerBlock = spec.threadsPerBlock;
    k.config.smemBytesPerBlock = smemBytes;
    unsigned iters = spec.iterations;
    k.body = [iters](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        for (unsigned i = 0; i < iters; ++i) {
            co_await ctx.op(gpu::OpClass::FAdd);
            if (i % 16 == 0)
                co_await ctx.syncthreads();
        }
        co_return;
    };
    return k;
}

gpu::KernelLaunch
makeStreamingWorkload(gpu::Device &dev, const WorkloadSpec &spec)
{
    constexpr std::size_t bufferBytes = 1 << 20;
    Addr base = dev.allocGlobal(bufferBytes, 4096);

    gpu::KernelLaunch k;
    k.name = "backprop-like";
    k.config.gridBlocks = spec.blocks;
    k.config.threadsPerBlock = spec.threadsPerBlock;
    unsigned iters = spec.iterations;
    k.body = [base, iters](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        for (unsigned i = 0; i < iters / 4; ++i) {
            std::vector<Addr> lanes;
            lanes.reserve(warpSize);
            Addr off = (Addr(ctx.globalWarpId()) * 4096 + Addr(i) * 128) %
                       (bufferBytes / 2);
            for (unsigned t = 0; t < static_cast<unsigned>(warpSize); ++t)
                lanes.push_back(base + off + Addr(t) * 4);
            co_await ctx.globalLoad(lanes);
            co_await ctx.globalStore(lanes);
        }
        co_return;
    };
    return k;
}

gpu::KernelLaunch
makeSetTargetedConstWorkload(gpu::Device &dev, const WorkloadSpec &spec,
                             unsigned setBegin, unsigned setEnd,
                             Cycle idleCyclesPerBurst)
{
    // Lines covering only the targeted sets, several ways deep so every
    // burst evicts whatever else lives there.
    const auto &geom = dev.arch().constMem.l1;
    Addr base = dev.allocConst(2 * geom.sizeBytes,
                               geom.numSets() * geom.lineBytes);
    std::vector<Addr> addrs;
    Addr stride = geom.numSets() * geom.lineBytes;
    for (unsigned set = setBegin; set < setEnd; ++set) {
        for (unsigned way = 0; way < geom.ways; ++way) {
            addrs.push_back(base + Addr(set) * geom.lineBytes +
                            Addr(way) * stride);
        }
    }

    gpu::KernelLaunch k;
    k.name = strfmt("set-walker[%u,%u)", setBegin, setEnd);
    k.config.gridBlocks = spec.blocks;
    k.config.threadsPerBlock = spec.threadsPerBlock;
    unsigned iters = spec.iterations;
    k.body = [addrs, iters,
              idleCyclesPerBurst](gpu::WarpCtx &ctx) -> gpu::WarpProgram {
        if (ctx.warpInBlock() != 0)
            co_return;
        for (unsigned i = 0; i < iters; ++i) {
            co_await ctx.constLoadSeq(addrs);
            // Aperiodic idle intervals (hash of the iteration index):
            // a perfectly periodic interferer would beat against the
            // channel's round period and correlate the induced errors.
            Cycle jitter = (Cycle(i) * 2654435761u) % idleCyclesPerBurst;
            co_await ctx.sleep(idleCyclesPerBurst / 2 + jitter);
        }
        co_return;
    };
    return k;
}

std::vector<gpu::KernelLaunch>
makeRodiniaLikeMix(gpu::Device &dev, const WorkloadSpec &spec)
{
    std::vector<gpu::KernelLaunch> mix;
    mix.push_back(makeConstantMemoryWorkload(dev, spec));
    mix.push_back(makeComputeWorkload(spec));
    mix.push_back(makeSharedMemoryWorkload(spec, 16 * 1024));
    mix.push_back(makeStreamingWorkload(dev, spec));
    return mix;
}

} // namespace gpucc::workloads

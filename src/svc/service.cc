#include "svc/service.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/metrics/json_writer.h"
#include "verify/digest.h"

namespace gpucc::svc
{

namespace
{

std::string
hex64(std::uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** One simulated worker of the virtual-clock engine. */
struct SimWorker
{
    std::string name;
    bool alive = true;
    bool stalled = false;
    unsigned claims = 0;
    std::uint64_t stallUntil = 0;
    // The result a stalled worker wakes up holding (usually stale by
    // then: its lease expired and the cell was re-run elsewhere).
    std::size_t staleJob = 0;
    std::uint64_t staleLease = 0;
    CellOutcome staleOutcome;
};

} // namespace

std::uint64_t
sweepDigest(const std::vector<obs::LedgerRecord> &records)
{
    verify::StateDigest d(0x73766364ULL); // "svcd"
    for (const obs::LedgerRecord &r : records) {
        d.u64(r.key());
        d.str(r.outcome);
        d.u64(r.digest);
        for (const auto &[name, v] : r.metrics) {
            d.str(name);
            d.f64(v);
        }
    }
    return d.value();
}

ServiceOutcome
runService(const SweepSpec &spec, const ServiceConfig &cfg,
           ResultStore &store)
{
    ServiceOutcome out;
    ServiceStats &stats = out.stats;
    const std::vector<CellSpec> cells = spec.expand();
    JobQueue queue(cells.size(), cfg.retry);

    // Resume: cells already in the store (the acked ledger prefix of
    // an interrupted run, or a previous identical run) are satisfied
    // without leasing — the delta is all that executes.
    for (const CellSpec &c : cells) {
        if (const obs::LedgerRecord *rec = store.find(c))
            queue.markCached(c.index, rec->outcome == "quarantined",
                             "");
    }

    const unsigned workerCount = cfg.workers >= 1 ? cfg.workers : 1;
    std::vector<SimWorker> workers(workerCount);
    for (unsigned w = 0; w < workerCount; ++w)
        workers[w].name = "w" + std::to_string(w);
    stats.workersSpawned = workerCount;

    const std::size_t appendedBefore = store.appended();
    const std::size_t skippedBefore = store.skipped();
    bool halt = false;

    // Persist one final outcome; halting hooks (haltAfterResults and
    // the torn-write injection) fire on *fresh* appends only.
    auto persist = [&](std::size_t jobIndex,
                       const CellOutcome &outcome, bool quarantined) {
        const obs::LedgerRecord rec =
            store.makeRecord(cells[jobIndex], outcome, quarantined);
        if (!store.put(rec))
            return;
        const std::size_t fresh = store.appended() - appendedBefore;
        if (cfg.faults.tornWriteAtAppend != 0 &&
            fresh == cfg.faults.tornWriteAtAppend &&
            !store.path().empty()) {
            // Simulate the coordinator dying inside ::write(): tear
            // the record just appended and stop the run. A resumed
            // run must detect the tail, re-run exactly this cell and
            // still converge to the canonical report.
            obs::Ledger::tornTruncateForTest(store.path());
            stats.errors.push_back(
                "chaos: torn write injected at append " +
                std::to_string(fresh));
            halt = true;
        }
        if (cfg.haltAfterResults != 0 &&
            fresh >= cfg.haltAfterResults)
            halt = true;
    };

    // Deliver one executed cell's outcome into the queue/store.
    auto deliver = [&](std::size_t jobIndex, std::uint64_t leaseId,
                       const CellOutcome &outcome, std::uint64_t now) {
        if (outcome.outcome == "complete") {
            if (queue.completeJob(jobIndex, leaseId))
                persist(jobIndex, outcome, /*quarantined=*/false);
            return;
        }
        if (queue.failJob(jobIndex, leaseId, outcome.error, now) &&
            queue.job(jobIndex).state == JobState::Quarantined)
            persist(jobIndex, outcome, /*quarantined=*/true);
    };

    std::uint64_t tick = 0;
    while (!queue.allDone() && !halt) {
        if (tick > cfg.maxTicks) {
            stats.errors.push_back(
                "engine exceeded maxTicks=" +
                std::to_string(cfg.maxTicks) +
                " — scheduling bug, aborting");
            break;
        }
        queue.expire(tick);
        bool anyAlive = false;
        bool progressed = false;
        for (unsigned w = 0; w < workerCount && !halt; ++w) {
            SimWorker &sw = workers[w];
            if (!sw.alive)
                continue;
            anyAlive = true;
            if (sw.stalled) {
                if (tick < sw.stallUntil)
                    continue; // silent: no heartbeat, no claims
                sw.stalled = false;
                progressed = true;
                // Wake up and submit; with a stall longer than the
                // lease this is a stale result and is discarded.
                if (queue.completeJob(sw.staleJob, sw.staleLease))
                    persist(sw.staleJob, sw.staleOutcome,
                            /*quarantined=*/false);
                continue;
            }
            queue.heartbeat(sw.name, tick);
            auto grant = queue.claim(sw.name, tick);
            if (!grant)
                continue;
            progressed = true;
            ++sw.claims;
            const WorkerFault *fault = cfg.faults.forWorker(w);
            if (fault != nullptr && fault->killAtClaim == sw.claims) {
                // Death mid-cell: the lease dangles until expiry.
                sw.alive = false;
                ++stats.workersDied;
                continue;
            }
            const CellOutcome outcome = runCell(cells[grant->job]);
            ++stats.cellsRun;
            if (fault != nullptr &&
                fault->stallAtClaim == sw.claims) {
                sw.stalled = true;
                sw.stallUntil = tick + fault->stallFor;
                sw.staleJob = grant->job;
                sw.staleLease = grant->leaseId;
                sw.staleOutcome = outcome;
                continue;
            }
            deliver(grant->job, grant->leaseId, outcome, tick);
        }
        if (!anyAlive)
            break; // every worker dead -> degraded completion below
        ++tick;
        if (!progressed && !queue.allDone() && !halt) {
            // Nothing runnable this tick: skip the clock to the next
            // event (backoff expiry, lease deadline or stall wakeup)
            // instead of spinning one tick at a time.
            std::uint64_t next = queue.nextEligibleAt();
            for (std::size_t i = 0; i < queue.size(); ++i) {
                const Job &j = queue.job(i);
                if (j.state == JobState::Leased)
                    next = std::min(next, j.leaseDeadline + 1);
            }
            for (const SimWorker &sw : workers) {
                if (sw.alive && sw.stalled)
                    next = std::min(next, sw.stallUntil);
            }
            if (next != UINT64_MAX && next > tick)
                tick = next;
        }
    }

    if (!queue.allDone() && !halt) {
        // Graceful degradation: every worker died. The coordinator
        // reclaims the dangling leases and finishes the remaining
        // cells in-process — slower, but the sweep completes and the
        // report says so via the degraded flag.
        stats.degraded = true;
        queue.expire(UINT64_MAX);
        while (!queue.allDone() && !halt) {
            auto grant = queue.claim("coordinator", UINT64_MAX);
            if (!grant)
                break; // defensive: should not happen at now=MAX
            const CellOutcome outcome = runCell(cells[grant->job]);
            ++stats.cellsRun;
            deliver(grant->job, grant->leaseId, outcome, UINT64_MAX);
        }
    }

    stats.halted = halt;
    stats.finalTick = tick;
    stats.storeAppended = store.appended() - appendedBefore;
    stats.storeSkipped = store.skipped() - skippedBefore;
    collectOutcome(spec, queue, store, out);
    return out;
}

void
collectOutcome(const SweepSpec &spec, const JobQueue &queue,
               ResultStore &store, ServiceOutcome &out)
{
    ServiceStats &stats = out.stats;
    stats.queue = queue.stats();
    for (const std::string &e : store.errors())
        stats.errors.push_back(e);
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const Job &j = queue.job(i);
        if (j.state == JobState::Quarantined) {
            const std::string &why = !j.lastCellError.empty()
                                         ? j.lastCellError
                                         : j.lastError;
            stats.quarantineLog.push_back(
                "cell " + std::to_string(i) + ": " +
                (j.cached ? "quarantined in a previous run" : why));
        }
    }
    const std::vector<CellSpec> cells = spec.expand();
    out.records.clear();
    out.records.resize(cells.size());
    out.missing.clear();
    for (const CellSpec &c : cells) {
        if (const obs::LedgerRecord *rec = store.find(c))
            out.records[c.index] = *rec;
        else
            out.missing.push_back(c.index);
    }
    out.digest =
        out.missing.empty() ? sweepDigest(out.records) : 0;
}

void
writeCanonicalReport(const SweepSpec &spec,
                     const ServiceOutcome &outcome, std::ostream &os)
{
    const std::vector<CellSpec> cells = spec.expand();
    metrics::JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    w.field("sweep", spec.name);
    w.field("seed_base", spec.seedBase);
    w.field("seeds_per_cell", spec.seedsPerCell);
    w.field("cell_count", static_cast<std::uint64_t>(cells.size()));
    w.beginArray("cells");
    for (const CellSpec &c : cells) {
        const bool missing =
            c.index < outcome.records.size() &&
            outcome.records[c.index].scenario.empty();
        w.beginObject();
        w.field("index", static_cast<std::uint64_t>(c.index));
        w.field("scenario", c.scenario);
        w.field("arch", c.arch);
        w.field("plan", c.plan);
        w.field("config", c.config);
        w.field("seed", hex64(c.seed));
        if (missing) {
            w.field("outcome", "missing");
        } else {
            const obs::LedgerRecord &r = outcome.records[c.index];
            w.field("key", hex64(r.key()));
            w.field("outcome", r.outcome);
            w.field("digest", hex64(r.digest));
            w.beginObject("metrics");
            for (const auto &[name, v] : r.metrics)
                w.field(name, v);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.beginArray("quarantined");
    for (const obs::LedgerRecord &r : outcome.records) {
        if (r.outcome == "quarantined")
            w.value(hex64(r.key()));
    }
    w.endArray();
    w.beginArray("missing");
    for (std::size_t i : outcome.missing)
        w.value(static_cast<std::uint64_t>(i));
    w.endArray();
    w.field("sweep_digest", hex64(outcome.digest));
    w.endObject();
    os << "\n";
}

void
writeServiceStats(const ServiceOutcome &outcome, std::ostream &os)
{
    const ServiceStats &s = outcome.stats;
    metrics::JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    w.field("degraded", s.degraded);
    w.field("halted", s.halted);
    w.field("workers_spawned", s.workersSpawned);
    w.field("workers_died", s.workersDied);
    w.field("cells_run", static_cast<std::uint64_t>(s.cellsRun));
    w.field("protocol_errors",
            static_cast<std::uint64_t>(s.protocolErrors));
    w.field("final_tick", s.finalTick);
    w.beginObject("queue");
    w.field("leases_granted", s.queue.leasesGranted);
    w.field("leases_expired", s.queue.leasesExpired);
    w.field("retries", s.queue.retries);
    w.field("stale_results", s.queue.staleResults);
    w.field("failures", s.queue.failures);
    w.field("completed", static_cast<std::uint64_t>(s.queue.completed));
    w.field("quarantined",
            static_cast<std::uint64_t>(s.queue.quarantined));
    w.field("cached", static_cast<std::uint64_t>(s.queue.cached));
    w.endObject();
    w.beginObject("store");
    w.field("appended", static_cast<std::uint64_t>(s.storeAppended));
    w.field("skipped", static_cast<std::uint64_t>(s.storeSkipped));
    w.endObject();
    w.beginArray("quarantine_log");
    for (const std::string &line : s.quarantineLog)
        w.value(line);
    w.endArray();
    w.beginArray("errors");
    for (const std::string &e : s.errors)
        w.value(e);
    w.endArray();
    w.endObject();
    os << "\n";
}

} // namespace gpucc::svc

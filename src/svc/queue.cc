#include "svc/queue.h"

#include <algorithm>

#include "sim/exec/sweep_runner.h"

namespace gpucc::svc
{

JobQueue::JobQueue(std::size_t jobCount, RetryPolicy policy)
    : retry(policy), jobs(jobCount)
{
    // A zero maxAttempts would quarantine nothing and retry forever;
    // clamp to at least one attempt so the state machine terminates.
    if (retry.maxAttempts == 0)
        retry.maxAttempts = 1;
    if (retry.backoffBase == 0)
        retry.backoffBase = 1;
}

void
JobQueue::markCached(std::size_t job, bool quarantined,
                     const std::string &error)
{
    Job &j = jobs[job];
    if (j.state == JobState::Done || j.state == JobState::Quarantined)
        return;
    j.state = quarantined ? JobState::Quarantined : JobState::Done;
    j.cached = true;
    j.lastCellError = error;
    j.lastError = error;
    ++doneCount;
    ++counters.cached;
    if (quarantined)
        ++counters.quarantined;
    else
        ++counters.completed;
}

std::optional<LeaseGrant>
JobQueue::claim(const std::string &worker, std::uint64_t now)
{
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        Job &j = jobs[i];
        if (j.state != JobState::Queued || j.notBefore > now)
            continue;
        j.state = JobState::Leased;
        j.leaseId = ++leaseCounter;
        j.leaseDeadline =
            now > UINT64_MAX - retry.leaseTimeout
                ? UINT64_MAX
                : now + retry.leaseTimeout;
        j.worker = worker;
        ++counters.leasesGranted;
        return LeaseGrant{i, j.leaseId};
    }
    return std::nullopt;
}

void
JobQueue::heartbeat(const std::string &worker, std::uint64_t now)
{
    for (Job &j : jobs) {
        if (j.state == JobState::Leased && j.worker == worker)
            j.leaseDeadline =
                now > UINT64_MAX - retry.leaseTimeout
                    ? UINT64_MAX
                    : now + retry.leaseTimeout;
    }
}

unsigned
JobQueue::expire(std::uint64_t now)
{
    unsigned expired = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        Job &j = jobs[i];
        if (j.state != JobState::Leased || j.leaseDeadline >= now)
            continue;
        ++expired;
        ++counters.leasesExpired;
        recordFailure(i,
                      "lease expired (worker '" + j.worker +
                          "' stopped heartbeating)",
                      /*fromRun=*/false, now);
    }
    return expired;
}

void
JobQueue::releaseWorker(const std::string &worker, std::uint64_t now)
{
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        Job &j = jobs[i];
        if (j.state != JobState::Leased || j.worker != worker)
            continue;
        ++counters.leasesExpired;
        recordFailure(i,
                      "worker '" + worker +
                          "' disconnected mid-lease",
                      /*fromRun=*/false, now);
    }
}

bool
JobQueue::completeJob(std::size_t job, std::uint64_t leaseId)
{
    // Indexes can arrive off the wire; out-of-range is rejected like
    // any other dead-lease result, never an out-of-bounds access.
    if (job >= jobs.size()) {
        ++counters.staleResults;
        return false;
    }
    Job &j = jobs[job];
    if (j.state != JobState::Leased || j.leaseId != leaseId) {
        ++counters.staleResults;
        return false;
    }
    j.state = JobState::Done;
    j.worker.clear();
    ++doneCount;
    ++counters.completed;
    return true;
}

bool
JobQueue::failJob(std::size_t job, std::uint64_t leaseId,
                  const std::string &error, std::uint64_t now)
{
    if (job >= jobs.size()) {
        ++counters.staleResults;
        return false;
    }
    Job &j = jobs[job];
    if (j.state != JobState::Leased || j.leaseId != leaseId) {
        ++counters.staleResults;
        return false;
    }
    ++counters.failures;
    recordFailure(job, error, /*fromRun=*/true, now);
    return true;
}

void
JobQueue::recordFailure(std::size_t job, const std::string &error,
                        bool fromRun, std::uint64_t now)
{
    Job &j = jobs[job];
    j.worker.clear();
    j.lastError = error;
    if (fromRun)
        j.lastCellError = error;
    ++j.attempts;
    if (j.attempts >= retry.maxAttempts) {
        j.state = JobState::Quarantined;
        ++doneCount;
        ++counters.quarantined;
        return;
    }
    j.state = JobState::Queued;
    const std::uint64_t delay = backoffDelay(job, j.attempts);
    j.notBefore =
        now > UINT64_MAX - delay ? UINT64_MAX : now + delay;
    ++counters.retries;
}

std::uint64_t
JobQueue::nextEligibleAt() const
{
    std::uint64_t earliest = UINT64_MAX;
    for (const Job &j : jobs) {
        if (j.state == JobState::Queued)
            earliest = std::min(earliest, j.notBefore);
    }
    return earliest;
}

std::uint64_t
JobQueue::backoffDelay(std::size_t job, unsigned attempt) const
{
    const unsigned shift = attempt > 0 ? attempt - 1 : 0;
    std::uint64_t base = retry.backoffBase;
    // Saturating left shift so absurd attempt counts cannot wrap.
    for (unsigned s = 0; s < shift && base < retry.backoffCap; ++s)
        base <<= 1;
    base = std::min(base, retry.backoffCap);
    // Deterministic jitter: a pure function of (seed, job, attempt),
    // so two runs of the same chaos plan desynchronize retries the
    // same way — reproducibility includes the failure schedule.
    const std::uint64_t jitter =
        sim::exec::splitmix64(retry.jitterSeed ^
                              (static_cast<std::uint64_t>(job) << 20) ^
                              attempt) %
        retry.backoffBase;
    return base + jitter;
}

} // namespace gpucc::svc

#include "svc/coordinator.h"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/metrics/json_writer.h"
#include "svc/wire.h"

namespace gpucc::svc
{

namespace
{

std::uint64_t
monotonicMs()
{
    timespec ts{};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000u +
           static_cast<std::uint64_t>(ts.tv_nsec) / 1000000u;
}

/** One connected worker socket. */
struct Conn
{
    int fd = -1;
    std::string worker; //!< set by hello
    wire::LineBuffer buf;
};

/** One spawned child process. */
struct Child
{
    pid_t pid = -1;
    bool reaped = false;
    int status = 0;
};

void
closeConn(Conn &c)
{
    if (c.fd >= 0)
        ::close(c.fd);
    c.fd = -1;
}

} // namespace

bool
writeSpool(const SweepSpec &spec, const ResultStore &store,
           const std::string &path, std::string &error)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os.good()) {
            error = tmp + ": cannot open for write";
            return false;
        }
        for (const CellSpec &c : spec.expand()) {
            const obs::LedgerRecord *cached = store.find(c);
            std::ostringstream line;
            metrics::JsonWriter w(line, /*pretty=*/false);
            w.beginObject();
            w.field("cell", static_cast<std::uint64_t>(c.index));
            w.field("scenario", c.scenario);
            w.field("arch", c.arch);
            w.field("plan", c.plan);
            w.field("config", c.config);
            char seed[19];
            std::snprintf(seed, sizeof seed, "0x%016llx",
                          static_cast<unsigned long long>(c.seed));
            w.field("seed", seed);
            w.field("state",
                    cached == nullptr ? "queued"
                    : cached->outcome == "quarantined"
                        ? "quarantined"
                        : "cached");
            w.endObject();
            os << line.str() << "\n";
        }
        if (!os.good()) {
            error = tmp + ": write failed";
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        error = path + ": rename failed: " + ec.message();
        return false;
    }
    return true;
}

ServiceOutcome
runCoordinator(const SweepSpec &spec, const CoordinatorConfig &cfg,
               ResultStore &store)
{
    ServiceOutcome out;
    ServiceStats &stats = out.stats;
    const std::vector<CellSpec> cells = spec.expand();
    JobQueue queue(cells.size(), cfg.retry);
    for (const CellSpec &c : cells) {
        if (const obs::LedgerRecord *rec = store.find(c))
            queue.markCached(c.index, rec->outcome == "quarantined",
                             "");
    }

    if (!cfg.spoolPath.empty()) {
        std::string err;
        if (!writeSpool(spec, store, cfg.spoolPath, err))
            stats.errors.push_back("spool: " + err);
    }

    const std::size_t appendedBefore = store.appended();
    const std::size_t skippedBefore = store.skipped();

    auto persist = [&](std::size_t jobIndex,
                       const CellOutcome &outcome, bool quarantined) {
        store.put(store.makeRecord(cells[jobIndex], outcome,
                                   quarantined));
    };
    auto deliver = [&](std::size_t jobIndex, std::uint64_t leaseId,
                       const CellOutcome &outcome, std::uint64_t now) {
        if (outcome.outcome == "complete") {
            if (queue.completeJob(jobIndex, leaseId))
                persist(jobIndex, outcome, /*quarantined=*/false);
            return;
        }
        if (queue.failJob(jobIndex, leaseId, outcome.error, now) &&
            queue.job(jobIndex).state == JobState::Quarantined)
            persist(jobIndex, outcome, /*quarantined=*/true);
    };
    auto degradedFinish = [&] {
        stats.degraded = true;
        queue.expire(UINT64_MAX);
        while (!queue.allDone()) {
            auto grant = queue.claim("coordinator", UINT64_MAX);
            if (!grant)
                break;
            const CellOutcome outcome = runCell(cells[grant->job]);
            ++stats.cellsRun;
            deliver(grant->job, grant->leaseId, outcome, UINT64_MAX);
        }
    };
    auto finish = [&]() -> ServiceOutcome & {
        stats.storeAppended = store.appended() - appendedBefore;
        stats.storeSkipped = store.skipped() - skippedBefore;
        collectOutcome(spec, queue, store, out);
        return out;
    };

    // Fully cached sweep (unchanged spec re-run): nothing to
    // distribute, so no sockets and no workers — just the report.
    if (queue.allDone())
        return finish();

    // ---- socket setup (failure degrades to in-process execution) ----
    if (cfg.workers == 0 || cfg.workerBin.empty() ||
        cfg.socketPath.empty()) {
        if (!queue.allDone())
            degradedFinish();
        stats.degraded = false; // in-process by request, not failure
        return finish();
    }
    ::signal(SIGPIPE, SIG_IGN);
    const int listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    bool socketOk = listenFd >= 0 &&
                    cfg.socketPath.size() < sizeof(addr.sun_path);
    if (socketOk) {
        ::unlink(cfg.socketPath.c_str());
        std::strncpy(addr.sun_path, cfg.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        socketOk = ::bind(listenFd,
                          reinterpret_cast<const sockaddr *>(&addr),
                          sizeof addr) == 0 &&
                   ::listen(listenFd, 16) == 0;
    }
    if (!socketOk) {
        stats.errors.push_back("socket setup failed on '" +
                               cfg.socketPath +
                               "': " + std::strerror(errno) +
                               " — running degraded in-process");
        if (listenFd >= 0)
            ::close(listenFd);
        degradedFinish();
        return finish();
    }

    // ---- spawn workers ----
    const std::string faultArg = cfg.faults.toString();
    std::vector<Child> children;
    for (unsigned wIdx = 0; wIdx < cfg.workers; ++wIdx) {
        const pid_t pid = ::fork();
        if (pid < 0) {
            stats.errors.push_back(
                std::string("fork failed: ") + std::strerror(errno));
            continue;
        }
        if (pid == 0) {
            ::close(listenFd);
            const std::string name = "w" + std::to_string(wIdx);
            const std::string ordinal = std::to_string(wIdx);
            std::vector<const char *> argv = {
                cfg.workerBin.c_str(), "--socket",
                cfg.socketPath.c_str(), "--name", name.c_str(),
                "--ordinal", ordinal.c_str()};
            if (!faultArg.empty()) {
                argv.push_back("--fault");
                argv.push_back(faultArg.c_str());
            }
            argv.push_back(nullptr);
            ::execv(cfg.workerBin.c_str(),
                    const_cast<char *const *>(argv.data()));
            ::_exit(127);
        }
        children.push_back({pid, false, 0});
        ++stats.workersSpawned;
    }

    auto reapChildren = [&](bool block) {
        for (Child &ch : children) {
            if (ch.reaped)
                continue;
            const pid_t r =
                ::waitpid(ch.pid, &ch.status, block ? 0 : WNOHANG);
            if (r == ch.pid) {
                ch.reaped = true;
                if (!WIFEXITED(ch.status) ||
                    WEXITSTATUS(ch.status) != 0)
                    ++stats.workersDied;
            }
        }
    };
    auto liveChildren = [&] {
        std::size_t n = 0;
        for (const Child &ch : children)
            n += ch.reaped ? 0 : 1;
        return n;
    };

    // ---- main poll loop ----
    std::vector<Conn> conns;
    const std::uint64_t start = monotonicMs();
    bool wallTimeout = false;
    while (!queue.allDone()) {
        const std::uint64_t now = monotonicMs() - start;
        if (now > cfg.maxWallMs) {
            stats.errors.push_back(
                "wall-clock ceiling hit (" +
                std::to_string(cfg.maxWallMs) +
                " ms) — finishing degraded");
            wallTimeout = true;
            break;
        }
        queue.expire(now);
        reapChildren(false);
        if (liveChildren() == 0 && conns.empty() && !queue.allDone())
            break; // all workers gone -> degraded finish

        std::vector<pollfd> fds;
        fds.push_back({listenFd, POLLIN, 0});
        for (const Conn &c : conns)
            fds.push_back({c.fd, POLLIN, 0});
        const int rc = ::poll(fds.data(),
                              static_cast<nfds_t>(fds.size()),
                              static_cast<int>(cfg.pollMs));
        if (rc < 0 && errno != EINTR) {
            stats.errors.push_back(std::string("poll failed: ") +
                                   std::strerror(errno));
            break;
        }
        if (fds[0].revents & POLLIN) {
            const int fd = ::accept(listenFd, nullptr, nullptr);
            if (fd >= 0) {
                // Non-blocking: the drain loop below reads until
                // EAGAIN, so a lockstep worker awaiting its reply can
                // never deadlock the coordinator on a blocking read.
                const int fl = ::fcntl(fd, F_GETFL, 0);
                ::fcntl(fd, F_SETFL,
                        (fl >= 0 ? fl : 0) | O_NONBLOCK);
                Conn c;
                c.fd = fd;
                conns.push_back(std::move(c));
            }
        }
        // Service every connection that has bytes (fds[i+1] maps to
        // conns[i]; conns are only appended above, never reordered).
        for (std::size_t i = 0; i < conns.size(); ++i) {
            Conn &c = conns[i];
            const short rev =
                i + 1 < fds.size() ? fds[i + 1].revents : 0;
            if (rev == 0)
                continue;
            char chunk[4096];
            bool dead = (rev & (POLLERR | POLLNVAL)) != 0;
            while (!dead) {
                const ssize_t n = ::read(c.fd, chunk, sizeof chunk);
                if (n > 0) {
                    c.buf.feed(chunk, static_cast<std::size_t>(n));
                    continue;
                }
                if (n < 0 && errno == EINTR)
                    continue;
                if (n < 0 &&
                    (errno == EAGAIN || errno == EWOULDBLOCK))
                    break; // drained; poll() signals the rest
                dead = true; // EOF or hard error
            }
            const std::uint64_t rxNow = monotonicMs() - start;
            std::string line;
            auto protocolError = [&](const std::string &what) {
                ++stats.protocolErrors;
                stats.errors.push_back("protocol: " + what);
                wire::sendLine(c.fd, wire::encodeError(what));
            };
            while (c.buf.next(line)) {
                wire::Message msg;
                std::string err;
                if (!wire::decode(line, msg, err)) {
                    protocolError(err);
                    continue;
                }
                if (msg.type == "hello") {
                    c.worker = msg.worker;
                    wire::sendLine(c.fd, wire::encodeOk());
                } else if (msg.type == "heartbeat") {
                    queue.heartbeat(msg.worker, rxNow);
                    wire::sendLine(c.fd, wire::encodeOk());
                } else if (msg.type == "claim") {
                    auto grant = queue.claim(msg.worker, rxNow);
                    if (grant) {
                        wire::sendLine(
                            c.fd,
                            wire::encodeGrant(cells[grant->job],
                                              grant->leaseId));
                    } else {
                        wire::sendLine(
                            c.fd,
                            wire::encodeNoWork(queue.allDone(),
                                               cfg.pollMs * 2));
                    }
                } else if (msg.type == "result") {
                    // The index comes off the wire: any local process
                    // can connect, so it must never reach jobs[] or
                    // cells[] unchecked (wire.h promises malformed
                    // messages are an error reply, never a crash).
                    if (c.worker.empty()) {
                        protocolError("result before hello");
                        continue;
                    }
                    if (msg.cell.index >= cells.size()) {
                        protocolError(
                            "result cell " +
                            std::to_string(msg.cell.index) +
                            " out of range (spec has " +
                            std::to_string(cells.size()) + " cells)");
                        continue;
                    }
                    ++stats.cellsRun;
                    deliver(msg.cell.index, msg.leaseId, msg.outcome,
                            rxNow);
                    wire::sendLine(c.fd, wire::encodeOk());
                } else {
                    protocolError("unknown type '" + msg.type + "'");
                }
            }
            if (dead) {
                if (!c.worker.empty())
                    queue.releaseWorker(c.worker, rxNow);
                closeConn(c);
            }
        }
        conns.erase(std::remove_if(conns.begin(), conns.end(),
                                   [](const Conn &c) {
                                       return c.fd < 0;
                                   }),
                    conns.end());
    }

    // ---- drain: let idle workers see "drained" and exit cleanly ----
    const std::uint64_t drainStart = monotonicMs();
    while (!conns.empty() && monotonicMs() - drainStart < 1000) {
        std::vector<pollfd> fds;
        for (const Conn &c : conns)
            fds.push_back({c.fd, POLLIN, 0});
        if (::poll(fds.data(), static_cast<nfds_t>(fds.size()), 25) <
            0)
            break;
        for (std::size_t i = 0; i < conns.size(); ++i) {
            Conn &c = conns[i];
            if (fds[i].revents == 0)
                continue;
            char chunk[4096];
            const ssize_t n = ::read(c.fd, chunk, sizeof chunk);
            if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                          errno == EWOULDBLOCK))
                continue; // spurious wakeup on a non-blocking fd
            if (n <= 0) {
                closeConn(c);
                continue;
            }
            c.buf.feed(chunk, static_cast<std::size_t>(n));
            std::string line;
            while (c.buf.next(line)) {
                wire::Message msg;
                std::string err;
                if (wire::decode(line, msg, err) &&
                    msg.type == "claim")
                    wire::sendLine(c.fd,
                                   wire::encodeNoWork(true, 0));
                else
                    wire::sendLine(c.fd, wire::encodeOk());
            }
        }
        conns.erase(std::remove_if(conns.begin(), conns.end(),
                                   [](const Conn &c) {
                                       return c.fd < 0;
                                   }),
                    conns.end());
        reapChildren(false);
    }
    for (Conn &c : conns)
        closeConn(c);
    ::close(listenFd);
    ::unlink(cfg.socketPath.c_str());

    // Stragglers (stalled or wedged workers) get SIGKILL: the run is
    // over and their results would be stale anyway.
    reapChildren(false);
    for (Child &ch : children) {
        if (!ch.reaped)
            ::kill(ch.pid, SIGKILL); // reap below counts the death
    }
    reapChildren(true);

    if (!queue.allDone())
        degradedFinish();
    stats.halted = false;
    if (wallTimeout)
        stats.degraded = true;
    return finish();
}

} // namespace gpucc::svc

/**
 * @file
 * gpucc_worker: one sweep-service worker process. Spawned by
 * gpucc_sweepd; connects back over the Unix-domain socket, claims
 * leases, runs cells, reports results. Carries the run's chaos plan
 * for self-injected kills and stalls (see svc/chaos.h).
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/log.h"
#include "svc/worker.h"

int
main(int argc, char **argv)
{
    using namespace gpucc;
    svc::WorkerConfig cfg;
    std::string faultText;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "gpucc_worker: " << flag
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (!std::strcmp(a, "-h") || !std::strcmp(a, "--help")) {
            std::cout
                << "usage: gpucc_worker --socket PATH [--name W]\n"
                   "         [--ordinal N] [--fault PLAN]\n";
            return 0;
        } else if (!std::strcmp(a, "--socket")) {
            cfg.socketPath = value(a);
        } else if (!std::strcmp(a, "--name")) {
            cfg.name = value(a);
        } else if (!std::strcmp(a, "--ordinal")) {
            cfg.ordinal = static_cast<unsigned>(
                std::strtoul(value(a), nullptr, 0));
        } else if (!std::strcmp(a, "--fault")) {
            faultText = value(a);
        } else {
            std::cerr << "gpucc_worker: unknown option " << a << "\n";
            return 2;
        }
    }
    if (cfg.socketPath.empty()) {
        std::cerr << "gpucc_worker: --socket is required\n";
        return 2;
    }
    std::string err;
    if (!faultText.empty() &&
        !svc::ProcessFaultPlan::parse(faultText, cfg.faults, err)) {
        std::cerr << "gpucc_worker: --fault " << err << "\n";
        return 2;
    }
    setVerbose(false);
    return svc::runWorker(cfg);
}

#include "svc/store.h"

namespace gpucc::svc
{

ResultStore::ResultStore(std::string path, std::string rev)
    : ledgerPath(std::move(path)), revision(std::move(rev))
{
    if (ledgerPath.empty())
        return; // memory-only store
    // One parse serves both consumers: the ledger handle indexes the
    // keys from the preloaded result, the cache keeps the payloads
    // (resume needs them back).
    obs::LedgerLoadResult loaded = obs::Ledger::load(ledgerPath);
    ledger = std::make_unique<obs::Ledger>(ledgerPath, loaded);
    for (obs::LedgerRecord &r : loaded.records) {
        const std::uint64_t k = r.key();
        cache.emplace(k, std::move(r));
    }
    loadedCount = loaded.records.size();
    tornAtOpen = loaded.tornTail;
    for (std::string &e : loaded.errors)
        errorList.push_back(std::move(e));
}

std::uint64_t
ResultStore::keyFor(const CellSpec &cell) const
{
    obs::LedgerRecord r;
    r.scenario = cell.scenario;
    r.arch = cell.arch;
    r.plan = cell.plan;
    r.config = cell.config;
    r.seed = cell.seed;
    r.gitDescribe = revision;
    return r.key();
}

const obs::LedgerRecord *
ResultStore::find(const CellSpec &cell) const
{
    auto it = cache.find(keyFor(cell));
    return it == cache.end() ? nullptr : &it->second;
}

obs::LedgerRecord
ResultStore::makeRecord(const CellSpec &cell,
                        const CellOutcome &outcome,
                        bool quarantined) const
{
    obs::LedgerRecord r;
    r.scenario = cell.scenario;
    r.arch = cell.arch;
    r.plan = cell.plan;
    r.config = cell.config;
    r.seed = cell.seed;
    r.gitDescribe = revision;
    if (quarantined) {
        // Deliberately a pure function of the cell identity: attempt
        // counts and error texts are scheduling history (a chaos run
        // reaches quarantine by a different path than a cold run) and
        // live in the service-stats side channel, so cold, chaos and
        // resumed runs all file byte-identical records.
        r.outcome = "quarantined";
        r.metrics["quarantined"] = 1.0;
    } else {
        r.outcome = outcome.outcome;
        r.digest = outcome.digest;
        r.metrics = outcome.metrics;
    }
    return r;
}

bool
ResultStore::put(const obs::LedgerRecord &record)
{
    const std::uint64_t k = record.key();
    if (cache.count(k) != 0) {
        ++skippedCount;
        if (ledger)
            ledger->append(record); // counts its own dedup skip
        return false;
    }
    if (ledger) {
        const std::size_t errBefore = ledger->loadErrors().size();
        if (!ledger->append(record)) {
            // Key was new in our cache, so this is a write failure,
            // not dedup — surface it and keep the record out of the
            // cache (the run will report the cell as missing rather
            // than pretend it was persisted).
            for (std::size_t i = errBefore;
                 i < ledger->loadErrors().size(); ++i)
                errorList.push_back(ledger->loadErrors()[i]);
            return false;
        }
    }
    cache.emplace(k, record);
    ++appendedCount;
    return true;
}

} // namespace gpucc::svc

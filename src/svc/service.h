/**
 * @file
 * Deterministic sweep-service engine and the canonical report.
 *
 * runService() drives the lease queue with a *virtual* clock and
 * simulated workers on the calling thread: claims, heartbeats, kills,
 * stalls and lease expiries all happen at integer ticks, so a chaos
 * plan replays bit-for-bit. The same engine is the coordinator's
 * degraded mode (all real workers dead -> finish in-process) and the
 * conformance scenario's subject.
 *
 * The determinism contract that makes chaos testing meaningful:
 * every cell result is a pure function of (scenario, arch, plan,
 * config, seed), and the canonical report is rendered from the
 * content-addressed store in cell-index order. Scheduling history —
 * who ran what, how many leases expired, which cells retried — is
 * real observability data but lives in a *separate* stats document.
 * Hence: cold run, chaos run, and kill-resume-finish run of the same
 * spec produce byte-identical canonical reports and equal sweep
 * digests, which verify/ and CI pin.
 */

#ifndef GPUCC_SVC_SERVICE_H
#define GPUCC_SVC_SERVICE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "svc/chaos.h"
#include "svc/queue.h"
#include "svc/spec.h"
#include "svc/store.h"

namespace gpucc::svc
{

/** Knobs of one in-process service run. */
struct ServiceConfig
{
    unsigned workers = 2;
    RetryPolicy retry;
    ProcessFaultPlan faults;
    /** Test hook simulating a coordinator crash: stop the engine
     *  after this many results have been persisted (0 = run to
     *  completion). The store then holds the acked prefix a resumed
     *  run continues from. */
    std::size_t haltAfterResults = 0;
    /** Safety net: abort (degraded, with an error) if the virtual
     *  clock passes this tick — a scheduling bug must fail tests,
     *  not hang CI. */
    std::uint64_t maxTicks = 1u << 20;
};

/** Schedule-dependent counters of one run (side channel; excluded
 *  from the canonical report and the sweep digest). */
struct ServiceStats
{
    QueueStats queue;
    bool degraded = false; //!< finished in-process after worker loss
    bool halted = false;   //!< stopped early by haltAfterResults
    unsigned workersSpawned = 0;
    unsigned workersDied = 0;
    std::size_t cellsRun = 0;      //!< runCell invocations
    std::size_t storeAppended = 0; //!< new records persisted
    std::size_t storeSkipped = 0;  //!< dedup hits (resume/cache)
    /** Malformed/out-of-contract wire messages rejected (answered with
     *  an error reply, logged in errors, never applied). */
    std::size_t protocolErrors = 0;
    std::uint64_t finalTick = 0;
    std::vector<std::string> errors; //!< store faults, engine aborts
    /** Per-quarantined-cell "index: last error" lines. */
    std::vector<std::string> quarantineLog;
};

/** Everything one service run produced. */
struct ServiceOutcome
{
    /** Final records in cell-index order; for a halted run, cells
     *  without a persisted outcome are absent from the store and
     *  listed in missing. */
    std::vector<obs::LedgerRecord> records;
    std::vector<std::size_t> missing;
    std::uint64_t digest = 0; //!< sweepDigest() (0 while halted)
    ServiceStats stats;
};

/** Run @p spec through the virtual-clock engine against @p store. */
ServiceOutcome runService(const SweepSpec &spec,
                          const ServiceConfig &cfg, ResultStore &store);

/** Shared epilogue of the engine and the process coordinator: pull
 *  final records out of @p store in cell-index order, list missing
 *  cells, compute the sweep digest (complete runs only) and assemble
 *  the quarantine log + queue counters into @p out.stats. */
void collectOutcome(const SweepSpec &spec, const JobQueue &queue,
                    ResultStore &store, ServiceOutcome &out);

/** Order-sensitive digest over final records in cell-index order:
 *  (key, outcome, digest, metrics) per cell. The single number CI
 *  compares between cold, chaos and resumed runs. */
std::uint64_t sweepDigest(const std::vector<obs::LedgerRecord> &records);

/** Render the canonical report: spec + per-cell final records +
 *  quarantined indices + sweep digest. Pure function of the store
 *  contents — byte-identical across schedules. */
void writeCanonicalReport(const SweepSpec &spec,
                          const ServiceOutcome &outcome,
                          std::ostream &os);

/** Render the schedule-dependent service stats document. */
void writeServiceStats(const ServiceOutcome &outcome, std::ostream &os);

} // namespace gpucc::svc

#endif // GPUCC_SVC_SERVICE_H

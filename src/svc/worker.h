/**
 * @file
 * The claim/run/report loop behind gpucc_worker.
 *
 * A worker is deliberately dumb: connect, say hello, then loop —
 * heartbeat, claim a lease, run the cell through runCell(), report
 * the result — until the coordinator answers "nowork, drained". The
 * cell runs on a helper thread while the protocol thread keeps
 * heartbeating, so a cell slower than the lease timeout holds its
 * lease instead of being spuriously expired and re-attempted. All
 * retry/backoff/quarantine intelligence lives on the coordinator;
 * a worker that dies mid-cell simply stops heartbeating and the
 * lease machinery does the rest.
 *
 * Chaos self-injection: the worker carries the run's ProcessFaultPlan
 * and applies its own entry — _exit(137) on the scripted claim (death
 * mid-cell, lease dangling), or going silent for the scripted stall
 * before submitting what is by then a stale result. Faults injected
 * *inside* the worker process are exactly what the coordinator must
 * survive, which is the point.
 */

#ifndef GPUCC_SVC_WORKER_H
#define GPUCC_SVC_WORKER_H

#include <cstdint>
#include <string>

#include "svc/chaos.h"

namespace gpucc::svc
{

/** Configuration of one worker process. */
struct WorkerConfig
{
    std::string socketPath;
    std::string name = "w0";
    unsigned ordinal = 0;    //!< index into the fault plan
    ProcessFaultPlan faults; //!< whole-run plan (self-selects entry)
    std::uint64_t connectTimeoutMs = 5000;
    std::uint64_t heartbeatEveryMs = 200;
};

/** Run the worker loop. @return process exit code: 0 drained clean,
 *  1 connect/protocol failure. (A scripted kill never returns — the
 *  process _exits with status 137.) */
int runWorker(const WorkerConfig &cfg);

} // namespace gpucc::svc

#endif // GPUCC_SVC_WORKER_H

#include "svc/spec.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <sstream>
#include <stdexcept>

#include "common/metrics/json_writer.h"
#include "gpu/arch_params.h"
#include "obs/profiler.h"
#include "sim/exec/sweep_runner.h"
#include "verify/json.h"
#include "verify/scenarios.h"

namespace gpucc::svc
{

namespace
{

/** Look up a modeled architecture by generation name. */
const gpu::ArchParams *
archByName(const std::string &name)
{
    static const std::vector<gpu::ArchParams> all =
        gpu::allArchitectures();
    for (const auto &a : all) {
        if (gpu::generationName(a.generation) == name)
            return &a;
    }
    return nullptr;
}

} // namespace

unsigned
configValue(const std::string &config, const std::string &key,
            unsigned fallback)
{
    // "key=value" entries separated by ';'; first match wins.
    std::size_t pos = 0;
    while (pos < config.size()) {
        std::size_t end = config.find(';', pos);
        if (end == std::string::npos)
            end = config.size();
        const std::string entry = config.substr(pos, end - pos);
        pos = end + 1;
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos ||
            entry.substr(0, eq) != key)
            continue;
        const std::string val = entry.substr(eq + 1);
        char *strEnd = nullptr;
        const unsigned long v =
            std::strtoul(val.c_str(), &strEnd, 10);
        if (strEnd == val.c_str() || *strEnd != '\0')
            return fallback;
        return static_cast<unsigned>(v);
    }
    return fallback;
}

std::vector<CellSpec>
SweepSpec::expand() const
{
    std::vector<CellSpec> cells;
    for (const CellKind &k : kinds) {
        for (const std::string &arch : archs) {
            for (unsigned s = 0; s < seedsPerCell; ++s) {
                CellSpec c;
                c.index = cells.size();
                c.scenario = k.scenario;
                c.arch = arch;
                c.plan = k.plan;
                c.config = k.config;
                c.seed = sim::exec::deriveSeed(seedBase, c.index);
                cells.push_back(std::move(c));
            }
        }
    }
    return cells;
}

std::string
SweepSpec::toJson() const
{
    std::ostringstream os;
    metrics::JsonWriter w(os, /*pretty=*/true);
    w.beginObject();
    w.field("name", name);
    w.field("seed_base", seedBase);
    w.field("seeds_per_cell", seedsPerCell);
    w.beginArray("archs");
    for (const std::string &a : archs)
        w.value(a);
    w.endArray();
    w.beginArray("cells");
    for (const CellKind &k : kinds) {
        w.beginObject();
        w.field("scenario", k.scenario);
        w.field("plan", k.plan);
        w.field("config", k.config);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return os.str();
}

bool
SweepSpec::parse(const std::string &text, SweepSpec &out,
                 std::string &error)
{
    verify::JsonParseResult p = verify::parseJson(text);
    if (!p.ok) {
        error = p.error;
        return false;
    }
    const verify::JsonValue &v = p.value;
    if (!v.isObject()) {
        error = "sweep spec is not a JSON object";
        return false;
    }
    out = SweepSpec{};
    out.name = v.stringOr("name", "sweep");
    out.seedBase =
        static_cast<std::uint64_t>(v.numberOr("seed_base", 2017));
    const double spc = v.numberOr("seeds_per_cell", 1);
    if (spc < 1 || spc > 4096) {
        error = "seeds_per_cell out of range [1, 4096]";
        return false;
    }
    out.seedsPerCell = static_cast<unsigned>(spc);
    const verify::JsonValue &archs = v.get("archs");
    if (!archs.isArray() || archs.items.empty()) {
        error = "missing or empty \"archs\" array";
        return false;
    }
    for (const auto &a : archs.items) {
        if (!a.isString()) {
            error = "\"archs\" entries must be strings";
            return false;
        }
        out.archs.push_back(a.text);
    }
    const verify::JsonValue &cells = v.get("cells");
    if (!cells.isArray() || cells.items.empty()) {
        error = "missing or empty \"cells\" array";
        return false;
    }
    for (const auto &c : cells.items) {
        if (!c.isObject() || c.stringOr("scenario", "").empty()) {
            error = "every \"cells\" entry needs a \"scenario\"";
            return false;
        }
        CellKind k;
        k.scenario = c.stringOr("scenario", "");
        k.plan = c.stringOr("plan", "");
        k.config = c.stringOr("config", "");
        out.kinds.push_back(std::move(k));
    }
    return true;
}

CellOutcome
runCell(const CellSpec &cell)
{
    CellOutcome out;
    try {
        if (cell.scenario == "flaky" || cell.scenario == "broken") {
            // Test kinds: deterministic per-cell failure so retry,
            // quarantine and byte-identity paths are exercisable
            // without a real measurement in the loop.
            const unsigned num = configValue(cell.config, "fail", 1);
            const unsigned den =
                std::max(1u, configValue(cell.config, "den", 1));
            const bool fails =
                cell.scenario == "broken" ||
                sim::exec::splitmix64(cell.seed) % den < num;
            if (fails)
                throw std::runtime_error(
                    "injected cell failure (" + cell.scenario +
                    ", cell " + std::to_string(cell.index) + ")");
            out.outcome = "complete";
            out.metrics["ok"] = 1.0;
            return out;
        }
        if (cell.scenario == "slow") {
            // Test kind: a cell whose wall-clock runtime ("ms=N")
            // outlives short lease timeouts, pinning that a busy
            // worker's heartbeats keep its lease alive. The *result*
            // stays a pure function of the cell identity.
            const unsigned ms = configValue(cell.config, "ms", 100);
            timespec ts{};
            ts.tv_sec = static_cast<time_t>(ms / 1000);
            ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000);
            ::nanosleep(&ts, nullptr);
            out.outcome = "complete";
            out.metrics["ok"] = 1.0;
            return out;
        }
        const gpu::ArchParams *arch = archByName(cell.arch);
        if (arch == nullptr)
            throw std::runtime_error("unknown architecture '" +
                                     cell.arch + "'");
        if (cell.scenario == "l1_baseline") {
            const unsigned bits =
                configValue(cell.config, "bits", 24);
            auto m = verify::measureL1Baseline(*arch, bits);
            out.outcome = "complete";
            out.metrics["bps"] = m.bps;
            out.metrics["error_rate"] = m.errorRate;
            out.metrics["error_free"] = m.errorFree ? 1.0 : 0.0;
        } else if (cell.scenario == "session") {
            const unsigned payloadBits =
                configValue(cell.config, "payload", 96);
            const std::string plan =
                cell.plan.empty() ? "quiet" : cell.plan;
            auto m = verify::measureSessionOverPlan(
                *arch, plan, cell.seed,
                verify::scenarioPayload(payloadBits, cell.seed));
            out.outcome = m.complete ? "complete" : "error";
            if (!m.complete)
                out.error = "session did not complete delivery";
            out.digest = m.deviceDigest;
            out.metrics["goodput_bps"] = m.goodputBps;
            out.metrics["residual_ber"] = m.residualBer;
            out.metrics["resyncs"] = m.resyncs;
            out.metrics["recalibrations"] = m.recalibrations;
            out.metrics["evictions"] = m.evictions;
        } else {
            throw std::runtime_error("unknown scenario kind '" +
                                     cell.scenario + "'");
        }
    } catch (const std::exception &e) {
        out = CellOutcome{};
        out.outcome = "error";
        out.error = e.what();
    } catch (...) {
        out = CellOutcome{};
        out.outcome = "error";
        out.error = "unknown exception";
    }
    return out;
}

SweepSpec
builtinSoakSpec(bool withBroken)
{
    SweepSpec spec;
    spec.name = withBroken ? "soak_chaos" : "soak";
    spec.seedBase = 2017;
    spec.seedsPerCell = 2;
    for (const auto &a : gpu::allArchitectures())
        spec.archs.push_back(gpu::generationName(a.generation));
    spec.kinds.push_back({"l1_baseline", "", "bits=24"});
    spec.kinds.push_back({"session", "quiet", "payload=96"});
    spec.kinds.push_back({"session", "eviction", "payload=96"});
    if (withBroken)
        spec.kinds.push_back({"broken", "", ""});
    return spec;
}

} // namespace gpucc::svc

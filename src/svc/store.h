/**
 * @file
 * Content-addressed result store: obs::Ledger grown into the sweep
 * service's crash-consistent memory.
 *
 * Each cell's *final* outcome — "complete" or "quarantined", never a
 * transient error — is one ledger record keyed by the cell's identity
 * hash (scenario, arch, plan, config, seed, revision). Persisting
 * only final outcomes is what makes retry and dedup compose: a
 * transient failure never occupies a key that a later successful
 * attempt needs, re-running an unchanged spec appends zero bytes, and
 * an interrupted run resumes by skipping exactly the cells whose keys
 * are already on disk (the acked ledger prefix).
 *
 * Crash consistency is inherited from the ledger: per-line CRCs and
 * torn-tail repair mean a worker or coordinator killed mid-write
 * leaves a detectable (and reported) fragment, never corrupt data.
 *
 * A store opened with an empty path is memory-only: same dedup and
 * lookup semantics, no file — conformance scenarios use it to compare
 * cold and chaos runs without touching disk.
 */

#ifndef GPUCC_SVC_STORE_H
#define GPUCC_SVC_STORE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/ledger.h"
#include "svc/spec.h"

namespace gpucc::svc
{

/** Ledger-backed (or memory-only) content-addressed cell results. */
class ResultStore
{
  public:
    /**
     * @param ledgerPath JSONL ledger file ("" = memory-only store).
     * @param revision Identity revision folded into every key; a run
     *        pins one so resumed runs address the same cells.
     */
    ResultStore(std::string ledgerPath, std::string revision);

    /** Identity key the store files @p cell under. */
    std::uint64_t keyFor(const CellSpec &cell) const;

    /** Cached record for @p cell, or nullptr when never completed. */
    const obs::LedgerRecord *find(const CellSpec &cell) const;

    /** Build the ledger record for one finished cell. Quarantined
     *  cells file outcome "quarantined" with no attempt history: the
     *  record is a pure function of the cell identity, so cold,
     *  chaos and resumed runs produce byte-identical records (error
     *  texts and attempt counts stay in the service stats). */
    obs::LedgerRecord makeRecord(const CellSpec &cell,
                                 const CellOutcome &outcome,
                                 bool quarantined) const;

    /** Persist one final record. @return true when it was new (false:
     *  dedup hit or write failure — write failures are in errors()). */
    bool put(const obs::LedgerRecord &record);

    /** Records newly appended through this handle. */
    std::size_t appended() const { return appendedCount; }
    /** put() calls skipped because the key already existed. */
    std::size_t skipped() const { return skippedCount; }
    /** Records already present when the store was opened. */
    std::size_t preexisting() const { return loadedCount; }

    /** True when the backing file ended in a torn write (repair is
     *  applied on the next append; the fragment stays reported). */
    bool openedTorn() const { return tornAtOpen; }

    /** Load-time and I/O errors (torn tails, CRC mismatches, ...). */
    const std::vector<std::string> &errors() const { return errorList; }

    const std::string &revisionTag() const { return revision; }
    const std::string &path() const { return ledgerPath; }

  private:
    std::string ledgerPath;
    std::string revision;
    std::unique_ptr<obs::Ledger> ledger; //!< null for memory-only
    std::map<std::uint64_t, obs::LedgerRecord> cache;
    std::vector<std::string> errorList;
    std::size_t appendedCount = 0;
    std::size_t skippedCount = 0;
    std::size_t loadedCount = 0;
    bool tornAtOpen = false;
};

} // namespace gpucc::svc

#endif // GPUCC_SVC_STORE_H

/**
 * @file
 * The real-process coordinator behind gpucc_sweepd.
 *
 * Shards an expanded sweep into the lease queue, materializes it as a
 * JSONL spool file (tmp+rename, so a crash never leaves a half
 * manifest), listens on a Unix-domain socket, fork/execs gpucc_worker
 * processes, and drives the same JobQueue state machine as the
 * virtual-clock engine — just with CLOCK_MONOTONIC milliseconds for
 * time and real kill(2)-able children for workers.
 *
 * Failure handling mirrors service.h exactly: heartbeat-timeout lease
 * expiry, backoff+jitter retries, poison-cell quarantine, and — when
 * every worker is gone with cells still pending — graceful
 * degradation: the coordinator reclaims the dangling leases and
 * finishes the sweep in-process, flagging the stats document
 * degraded:true. The canonical report it writes is rendered from the
 * content-addressed store, so it is byte-identical to an unfaulted or
 * in-process run of the same spec.
 */

#ifndef GPUCC_SVC_COORDINATOR_H
#define GPUCC_SVC_COORDINATOR_H

#include <cstdint>
#include <string>

#include "svc/service.h"

namespace gpucc::svc
{

/** Configuration of one coordinator run. */
struct CoordinatorConfig
{
    std::string socketPath;  //!< UDS address (created, then unlinked)
    std::string workerBin;   //!< gpucc_worker executable to spawn
    unsigned workers = 2;    //!< processes to fork/exec
    RetryPolicy retry{/*maxAttempts=*/4, /*leaseTimeout=*/2000,
                      /*backoffBase=*/20, /*backoffCap=*/640,
                      /*jitterSeed=*/0x5eed};
    ProcessFaultPlan faults; //!< forwarded to workers (self-injection)
    std::uint64_t pollMs = 25;
    /** Whole-run wall-clock ceiling: past it the coordinator kills
     *  its children and finishes degraded (CI must never hang). */
    std::uint64_t maxWallMs = 120000;
    std::string spoolPath; //!< queue manifest ("" = skip)
};

/**
 * Run @p spec to completion against @p store. Returns the same
 * ServiceOutcome shape as the in-process engine; process-layer
 * incidents (spawn failures, protocol errors) land in stats.errors.
 * Falls back to the in-process engine when @p cfg.workers is 0 or the
 * socket cannot be created.
 */
ServiceOutcome runCoordinator(const SweepSpec &spec,
                              const CoordinatorConfig &cfg,
                              ResultStore &store);

/** Write the spool manifest (expanded cells + initial queue state)
 *  atomically via tmp+rename. @return false on I/O failure. */
bool writeSpool(const SweepSpec &spec, const ResultStore &store,
                const std::string &path, std::string &error);

} // namespace gpucc::svc

#endif // GPUCC_SVC_COORDINATOR_H

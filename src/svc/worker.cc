#include "svc/worker.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include "svc/spec.h"
#include "svc/wire.h"

namespace gpucc::svc
{

namespace
{

void
sleepMs(std::uint64_t ms)
{
    timespec ts{};
    ts.tv_sec = static_cast<time_t>(ms / 1000);
    ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000);
    ::nanosleep(&ts, nullptr);
}

/** Blocking read of one '\n'-terminated reply. */
bool
readReply(int fd, wire::LineBuffer &buf, wire::Message &msg)
{
    std::string line;
    while (!buf.next(line)) {
        char chunk[4096];
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n > 0) {
            buf.feed(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false; // EOF: coordinator gone
    }
    std::string err;
    return wire::decode(line, msg, err);
}

/** Lockstep exchange: send @p req, wait for the reply. */
bool
exchange(int fd, wire::LineBuffer &buf, const std::string &req,
         wire::Message &reply)
{
    return wire::sendLine(fd, req) && readReply(fd, buf, reply);
}

int
connectWithRetry(const std::string &path, std::uint64_t timeoutMs)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return -1;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    // The coordinator binds the socket before forking, but a slow
    // filesystem can still race us — retry for the grace period.
    for (std::uint64_t waited = 0;; waited += 50) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof addr) == 0)
            return fd;
        ::close(fd);
        if (waited >= timeoutMs)
            return -1;
        sleepMs(50);
    }
}

} // namespace

int
runWorker(const WorkerConfig &cfg)
{
    const int fd =
        connectWithRetry(cfg.socketPath, cfg.connectTimeoutMs);
    if (fd < 0) {
        std::fprintf(stderr,
                     "gpucc_worker %s: cannot connect to %s\n",
                     cfg.name.c_str(), cfg.socketPath.c_str());
        return 1;
    }
    wire::LineBuffer buf;
    wire::Message reply;
    if (!exchange(fd, buf, wire::encodeHello(cfg.name), reply) ||
        reply.type != "ok") {
        ::close(fd);
        return 1;
    }

    const WorkerFault *fault = cfg.faults.forWorker(cfg.ordinal);
    unsigned claims = 0;
    for (;;) {
        if (!exchange(fd, buf, wire::encodeHeartbeat(cfg.name),
                      reply))
            break;
        if (!exchange(fd, buf, wire::encodeClaim(cfg.name), reply))
            break;
        if (reply.type == "nowork") {
            if (reply.drained) {
                ::close(fd);
                return 0;
            }
            sleepMs(reply.retryMs != 0 ? reply.retryMs
                                       : cfg.heartbeatEveryMs);
            continue;
        }
        if (reply.type != "grant")
            continue; // protocol noise; try again
        ++claims;
        if (fault != nullptr && fault->killAtClaim == claims) {
            // Scripted death mid-cell: lease claimed, no result, no
            // goodbye. 137 = what SIGKILL would report.
            ::_exit(137);
        }
        const CellSpec cell = reply.cell;
        const std::uint64_t lease = reply.leaseId;
        // Run the cell on a helper thread so this thread can keep
        // heartbeating: a cell whose runtime exceeds the lease
        // timeout must not lose its lease (expiry would re-queue it,
        // burn an attempt, and on a slow machine quarantine healthy
        // cells). The socket stays single-threaded — compute over
        // there, lockstep protocol here.
        CellOutcome outcome;
        std::atomic<bool> cellDone{false};
        std::thread compute([&] {
            outcome = runCell(cell);
            cellDone.store(true, std::memory_order_release);
        });
        bool connAlive = true;
        std::uint64_t sinceBeatMs = 0;
        const std::uint64_t stepMs = 10;
        while (!cellDone.load(std::memory_order_acquire)) {
            sleepMs(stepMs);
            sinceBeatMs += stepMs;
            if (connAlive && sinceBeatMs >= cfg.heartbeatEveryMs) {
                connAlive = exchange(
                    fd, buf, wire::encodeHeartbeat(cfg.name), reply);
                sinceBeatMs = 0;
            }
        }
        compute.join();
        if (!connAlive)
            break; // coordinator gone; result has no one to go to
        if (fault != nullptr && fault->stallAtClaim == claims) {
            // Scripted stall: no heartbeats while asleep, so the
            // lease expires and this submission arrives stale. The
            // coordinator must discard it, not double-count the cell.
            sleepMs(fault->stallFor);
        }
        if (!exchange(fd, buf,
                      wire::encodeResult(cfg.name, cell, lease,
                                         outcome),
                      reply))
            break;
    }
    ::close(fd);
    return 1; // coordinator vanished mid-conversation
}

} // namespace gpucc::svc

#include "svc/chaos.h"

#include <cstdio>
#include <cstdlib>

namespace gpucc::svc
{

namespace
{

/** Strict unsigned parse of @p s (whole string). */
bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
}

} // namespace

bool
ProcessFaultPlan::parse(const std::string &text, ProcessFaultPlan &out,
                        std::string &error)
{
    out = ProcessFaultPlan{};
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find(',', pos);
        if (end == std::string::npos)
            end = text.size();
        const std::string entry = text.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty())
            continue;
        std::uint64_t n = 0;
        if (entry.compare(0, 5, "torn@") == 0) {
            if (!parseU64(entry.substr(5), n) || n == 0) {
                error = "'" + entry + "': want torn@<N> with N >= 1";
                return false;
            }
            out.tornWriteAtAppend = static_cast<unsigned>(n);
            continue;
        }
        if (entry.size() < 2 || entry[0] != 'w') {
            error = "'" + entry +
                    "': want w<W>:kill@<K>, w<W>:stall@<K>x<T> or "
                    "torn@<N>";
            return false;
        }
        const std::size_t colon = entry.find(':');
        std::uint64_t workerId = 0;
        if (colon == std::string::npos ||
            !parseU64(entry.substr(1, colon - 1), workerId)) {
            error = "'" + entry + "': malformed worker ordinal";
            return false;
        }
        const std::string action = entry.substr(colon + 1);
        WorkerFault f;
        f.worker = static_cast<unsigned>(workerId);
        if (action.compare(0, 5, "kill@") == 0) {
            if (!parseU64(action.substr(5), n) || n == 0) {
                error = "'" + entry + "': want kill@<K> with K >= 1";
                return false;
            }
            f.killAtClaim = static_cast<unsigned>(n);
        } else if (action.compare(0, 6, "stall@") == 0) {
            const std::string rest = action.substr(6);
            const std::size_t x = rest.find('x');
            std::uint64_t dur = 0;
            if (x == std::string::npos ||
                !parseU64(rest.substr(0, x), n) || n == 0 ||
                !parseU64(rest.substr(x + 1), dur) || dur == 0) {
                error = "'" + entry +
                        "': want stall@<K>x<T> with K,T >= 1";
                return false;
            }
            f.stallAtClaim = static_cast<unsigned>(n);
            f.stallFor = dur;
        } else {
            error = "'" + entry + "': unknown action '" + action + "'";
            return false;
        }
        // Merge with an existing entry for the same worker so
        // "w0:kill@5,w0:stall@2x10" scripts both faults.
        WorkerFault *existing = nullptr;
        for (WorkerFault &e : out.faults) {
            if (e.worker == f.worker)
                existing = &e;
        }
        if (existing == nullptr) {
            out.faults.push_back(f);
        } else {
            if (f.killAtClaim != 0)
                existing->killAtClaim = f.killAtClaim;
            if (f.stallAtClaim != 0) {
                existing->stallAtClaim = f.stallAtClaim;
                existing->stallFor = f.stallFor;
            }
        }
    }
    return true;
}

std::string
ProcessFaultPlan::toString() const
{
    std::string out;
    char buf[64];
    for (const WorkerFault &f : faults) {
        if (f.killAtClaim != 0) {
            std::snprintf(buf, sizeof buf, "w%u:kill@%u", f.worker,
                          f.killAtClaim);
            out += out.empty() ? "" : ",";
            out += buf;
        }
        if (f.stallAtClaim != 0) {
            std::snprintf(buf, sizeof buf, "w%u:stall@%ux%llu",
                          f.worker, f.stallAtClaim,
                          static_cast<unsigned long long>(f.stallFor));
            out += out.empty() ? "" : ",";
            out += buf;
        }
    }
    if (tornWriteAtAppend != 0) {
        std::snprintf(buf, sizeof buf, "torn@%u", tornWriteAtAppend);
        out += out.empty() ? "" : ",";
        out += buf;
    }
    return out;
}

const WorkerFault *
ProcessFaultPlan::forWorker(unsigned w) const
{
    for (const WorkerFault &f : faults) {
        if (f.worker == w)
            return &f;
    }
    return nullptr;
}

} // namespace gpucc::svc

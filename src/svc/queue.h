/**
 * @file
 * Lease-based job queue: the failure-handling heart of the sweep
 * service.
 *
 * Every cell of an expanded sweep is one job walking a small state
 * machine:
 *
 *     Queued --claim--> Leased --complete--> Done
 *       ^                  |
 *       |   fail/expire    v        attempts == maxAttempts
 *       +---(backoff)--- retry ------------------------------> Quarantined
 *
 * Failure is policy, not an afterthought: a worker that stops
 * heartbeating loses its lease (the cell is requeued, not lost), a
 * cell that fails retries under exponential backoff with
 * deterministic splitmix64 jitter, and a cell that keeps failing is
 * *quarantined* — reported in the final results with its last error,
 * never silently dropped. Results arriving under a stale lease (a
 * stalled worker waking up after its lease expired and someone else
 * finished the cell) are counted and discarded, so every cell has
 * exactly one authoritative outcome.
 *
 * Time is an abstract uint64 supplied by the caller: the in-process
 * engine (service.h) drives it as a virtual tick counter for
 * deterministic tests, the socket coordinator (coordinator.h) as
 * CLOCK_MONOTONIC milliseconds. The queue itself never reads a clock,
 * which is what makes the chaos soak reproducible.
 */

#ifndef GPUCC_SVC_QUEUE_H
#define GPUCC_SVC_QUEUE_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace gpucc::svc
{

/** Retry/lease policy knobs (units: caller's clock — ticks or ms). */
struct RetryPolicy
{
    unsigned maxAttempts = 4;       //!< failures before quarantine
    std::uint64_t leaseTimeout = 8; //!< heartbeat deadline per lease
    std::uint64_t backoffBase = 2;  //!< first retry delay
    std::uint64_t backoffCap = 64;  //!< exponential backoff ceiling
    std::uint64_t jitterSeed = 0x5eed; //!< splitmix64 jitter key
};

enum class JobState
{
    Queued,      //!< eligible (once notBefore passes)
    Leased,      //!< held by a worker under a live lease
    Done,        //!< authoritative completed result stored
    Quarantined, //!< failed maxAttempts times; reported, never rerun
};

/** One cell's scheduling state. */
struct Job
{
    JobState state = JobState::Queued;
    unsigned attempts = 0;          //!< failed attempts so far
    std::uint64_t notBefore = 0;    //!< backoff eligibility time
    std::uint64_t leaseId = 0;      //!< current lease (when Leased)
    std::uint64_t leaseDeadline = 0;
    std::string worker;             //!< holder of the current lease
    bool cached = false;            //!< satisfied from the result store
    /** Last failure from *running* the cell (failJob); lease expiries
     *  do not overwrite it, so the quarantine report carries the
     *  deterministic cell error, not scheduling noise. */
    std::string lastCellError;
    std::string lastError; //!< most recent failure of any kind
};

/** A granted lease: which job, under which lease id. */
struct LeaseGrant
{
    std::size_t job = 0;
    std::uint64_t leaseId = 0;
};

/** Service counters (the schedule-dependent side channel; these never
 *  enter the canonical report or the sweep digest). */
struct QueueStats
{
    std::uint64_t leasesGranted = 0;
    std::uint64_t leasesExpired = 0;
    std::uint64_t retries = 0;      //!< requeues after fail/expiry
    std::uint64_t staleResults = 0; //!< results rejected (dead lease)
    std::uint64_t failures = 0;     //!< failJob calls accepted
    std::size_t completed = 0;
    std::size_t quarantined = 0;
    std::size_t cached = 0; //!< satisfied from the store, never leased
};

/** Lease/retry/quarantine state machine over @p jobCount cells. */
class JobQueue
{
  public:
    JobQueue(std::size_t jobCount, RetryPolicy policy);

    /** Mark a job satisfied by a cached store record (resume path). */
    void markCached(std::size_t job, bool quarantined,
                    const std::string &error);

    /** Claim the lowest-index eligible job for @p worker at @p now.
     *  std::nullopt when nothing is eligible (drained, all leased, or
     *  all backing off). */
    std::optional<LeaseGrant> claim(const std::string &worker,
                                    std::uint64_t now);

    /** Extend every live lease held by @p worker to now + timeout. */
    void heartbeat(const std::string &worker, std::uint64_t now);

    /** Expire leases whose deadline passed: requeue (with backoff) or
     *  quarantine. @return number of leases expired. */
    unsigned expire(std::uint64_t now);

    /** Worker connection died: expire its leases immediately (no need
     *  to wait out the heartbeat deadline we know will never come). */
    void releaseWorker(const std::string &worker, std::uint64_t now);

    /** Accept a completed result. @return false (stale, discarded)
     *  when @p leaseId is not the job's live lease or @p job is out
     *  of range (wire-supplied indexes are never trusted). */
    bool completeJob(std::size_t job, std::uint64_t leaseId);

    /** Accept a failed result: requeue with backoff or quarantine.
     *  @return false when the lease was stale or @p job out of range
     *  (failure discarded). */
    bool failJob(std::size_t job, std::uint64_t leaseId,
                 const std::string &error, std::uint64_t now);

    /** True when every job is Done or Quarantined. */
    bool allDone() const { return doneCount == jobs.size(); }

    /** Jobs not yet Done/Quarantined. */
    std::size_t pending() const { return jobs.size() - doneCount; }

    /** Earliest notBefore among queued jobs (UINT64_MAX when none are
     *  queued) — lets a caller skip its clock over a backoff gap. */
    std::uint64_t nextEligibleAt() const;

    const Job &job(std::size_t i) const { return jobs[i]; }
    std::size_t size() const { return jobs.size(); }
    const QueueStats &stats() const { return counters; }
    const RetryPolicy &policy() const { return retry; }

    /** Deterministic backoff delay before retry number @p attempt
     *  (1-based) of @p job: min(cap, base << (attempt-1)) plus
     *  splitmix64 jitter in [0, base). Exposed for tests. */
    std::uint64_t backoffDelay(std::size_t job,
                               unsigned attempt) const;

  private:
    /** Shared fail/expire path: retry with backoff or quarantine. */
    void recordFailure(std::size_t job, const std::string &error,
                       bool fromRun, std::uint64_t now);

    RetryPolicy retry;
    std::vector<Job> jobs;
    std::size_t doneCount = 0;
    std::uint64_t leaseCounter = 0;
    QueueStats counters;
};

} // namespace gpucc::svc

#endif // GPUCC_SVC_QUEUE_H

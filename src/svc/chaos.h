/**
 * @file
 * Process-level fault plans for the sweep service chaos harness.
 *
 * The covert-channel layers already have microarchitectural fault
 * injection (sim/fault); this is the same philosophy one level up:
 * a ProcessFaultPlan describes *which worker misbehaves, when and
 * how*, in a compact string ("w0:kill@3,w1:stall@2x40,torn@5") that
 * travels on a command line. Faults are keyed to a worker's Nth
 * granted lease — a logical clock the virtual-tick engine and the
 * real fork/exec workers share — so the same plan is replayable in
 * both, and the soak test can assert that a kill-and-resume run
 * converges to the byte-identical report of an unfaulted one.
 *
 *  - w<W>:kill@<K>    worker W dies (no result, lease dangles) on
 *                     its K-th granted lease (1-based)
 *  - w<W>:stall@<K>x<T>  worker W goes silent for T ticks/ms after
 *                     claiming its K-th lease, then submits the
 *                     (by then stale) result
 *  - torn@<N>         the coordinator's store suffers a torn write
 *                     after its N-th append (test hook: exercises
 *                     ledger repair under the service)
 */

#ifndef GPUCC_SVC_CHAOS_H
#define GPUCC_SVC_CHAOS_H

#include <cstdint>
#include <string>
#include <vector>

namespace gpucc::svc
{

/** Faults scripted for one worker. */
struct WorkerFault
{
    unsigned worker = 0;
    unsigned killAtClaim = 0;  //!< 0 = never
    unsigned stallAtClaim = 0; //!< 0 = never
    std::uint64_t stallFor = 0; //!< stall duration (ticks or ms)
};

/** A full chaos script for one service run. */
struct ProcessFaultPlan
{
    std::vector<WorkerFault> faults;
    unsigned tornWriteAtAppend = 0; //!< 0 = never

    /** Parse the compact plan syntax. Empty string = no faults.
     *  @return false with @p error set on malformed input. */
    static bool parse(const std::string &text, ProcessFaultPlan &out,
                      std::string &error);

    /** Round-trip back to the compact syntax (worker order kept). */
    std::string toString() const;

    /** Fault entry for worker @p w (nullptr when unscripted). */
    const WorkerFault *forWorker(unsigned w) const;

    bool empty() const
    {
        return faults.empty() && tornWriteAtAppend == 0;
    }
};

} // namespace gpucc::svc

#endif // GPUCC_SVC_CHAOS_H

#include "svc/wire.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include <poll.h>
#include <unistd.h>

#include "common/metrics/json_writer.h"
#include "verify/json.h"

namespace gpucc::svc::wire
{

namespace
{

std::string
hex64(std::uint64_t v)
{
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

bool
parseHex64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 16);
    return end != nullptr && *end == '\0';
}

std::string
simple(const std::string &type, const std::string &worker)
{
    std::ostringstream os;
    metrics::JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("type", type);
    if (!worker.empty())
        w.field("worker", worker);
    w.endObject();
    return os.str();
}

} // namespace

std::string
encodeHello(const std::string &worker)
{
    return simple("hello", worker);
}

std::string
encodeClaim(const std::string &worker)
{
    return simple("claim", worker);
}

std::string
encodeHeartbeat(const std::string &worker)
{
    return simple("heartbeat", worker);
}

std::string
encodeResult(const std::string &worker, const CellSpec &cell,
             std::uint64_t leaseId, const CellOutcome &outcome)
{
    std::ostringstream os;
    metrics::JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("type", "result");
    w.field("worker", worker);
    w.field("cell", static_cast<std::uint64_t>(cell.index));
    w.field("lease", hex64(leaseId));
    w.field("outcome", outcome.outcome);
    if (!outcome.error.empty())
        w.field("error", outcome.error);
    w.field("digest", hex64(outcome.digest));
    w.beginObject("metrics");
    for (const auto &[name, v] : outcome.metrics)
        w.field(name, v);
    w.endObject();
    w.endObject();
    return os.str();
}

std::string
encodeGrant(const CellSpec &cell, std::uint64_t leaseId)
{
    std::ostringstream os;
    metrics::JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("type", "grant");
    w.field("cell", static_cast<std::uint64_t>(cell.index));
    w.field("lease", hex64(leaseId));
    w.field("scenario", cell.scenario);
    w.field("arch", cell.arch);
    w.field("plan", cell.plan);
    w.field("config", cell.config);
    w.field("seed", hex64(cell.seed));
    w.endObject();
    return os.str();
}

std::string
encodeNoWork(bool drained, std::uint64_t retryMs)
{
    std::ostringstream os;
    metrics::JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("type", "nowork");
    w.field("drained", drained);
    w.field("retry_ms", retryMs);
    w.endObject();
    return os.str();
}

std::string
encodeOk()
{
    return simple("ok", "");
}

std::string
encodeError(const std::string &what)
{
    std::ostringstream os;
    metrics::JsonWriter w(os, /*pretty=*/false);
    w.beginObject();
    w.field("type", "error");
    w.field("error", what);
    w.endObject();
    return os.str();
}

bool
decode(const std::string &line, Message &out, std::string &error)
{
    verify::JsonParseResult p = verify::parseJson(line);
    if (!p.ok) {
        error = p.error;
        return false;
    }
    const verify::JsonValue &v = p.value;
    if (!v.isObject()) {
        error = "message is not a JSON object";
        return false;
    }
    out = Message{};
    out.type = v.stringOr("type", "");
    if (out.type.empty()) {
        error = "missing \"type\"";
        return false;
    }
    out.worker = v.stringOr("worker", "");
    out.error = v.stringOr("error", "");
    out.drained = v.get("drained").boolean;
    out.retryMs =
        static_cast<std::uint64_t>(v.numberOr("retry_ms", 0));
    out.cell.index =
        static_cast<std::size_t>(v.numberOr("cell", 0));
    out.cell.scenario = v.stringOr("scenario", "");
    out.cell.arch = v.stringOr("arch", "");
    out.cell.plan = v.stringOr("plan", "");
    out.cell.config = v.stringOr("config", "");
    std::uint64_t u = 0;
    if (parseHex64(v.stringOr("seed", ""), u))
        out.cell.seed = u;
    if (parseHex64(v.stringOr("lease", ""), u))
        out.leaseId = u;
    if (out.type == "result") {
        out.outcome.outcome = v.stringOr("outcome", "");
        out.outcome.error = out.error;
        if (parseHex64(v.stringOr("digest", ""), u))
            out.outcome.digest = u;
        for (const auto &[name, mv] : v.get("metrics").members) {
            if (mv.isNumber())
                out.outcome.metrics[name] = mv.number;
        }
        if (out.outcome.outcome.empty()) {
            error = "result without \"outcome\"";
            return false;
        }
    }
    return true;
}

bool
sendLine(int fd, const std::string &line)
{
    std::string framed = line + "\n";
    std::size_t off = 0;
    while (off < framed.size()) {
        const ssize_t n =
            ::write(fd, framed.data() + off, framed.size() - off);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EINTR))
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // Non-blocking fd with a full buffer: wait (bounded) for
            // writability. A peer that stays wedged past the bound is
            // treated as dead rather than stalling the caller.
            pollfd p{fd, POLLOUT, 0};
            if (::poll(&p, 1, 1000) > 0)
                continue;
            return false;
        }
        return false;
    }
    return true;
}

} // namespace gpucc::svc::wire

/**
 * @file
 * gpucc_sweepd: fault-tolerant distributed sweep coordinator CLI.
 *
 * Runs a sweep spec either through real gpucc_worker processes over a
 * Unix-domain socket (--workers N --worker-bin PATH) or through the
 * deterministic in-process engine (--in-process), against a crash-
 * consistent content-addressed ledger, and writes the canonical
 * report (byte-identical across schedules, kills and resumes) plus
 * the schedule-dependent service stats.
 *
 * Exit codes: 0 sweep complete (every cell completed or explicitly
 * quarantined), 2 usage/spec error, 3 interrupted (--halt-after) —
 * resume by re-running with the same --ledger, 4 incomplete (cells
 * missing despite a finished run: store write failures).
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/log.h"
#include "svc/coordinator.h"

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: gpucc_sweepd [options]\n"
          "\n"
          "Sweep input:\n"
          "  --spec PATH        sweep spec JSON (see DESIGN.md "
          "section 10)\n"
          "  --builtin          use the built-in soak spec\n"
          "  --with-broken      add the always-failing quarantine "
          "row\n"
          "\n"
          "Results:\n"
          "  --ledger PATH      content-addressed result ledger "
          "(JSONL);\n"
          "                     resumes/dedups against its contents\n"
          "  --report PATH      canonical report (default stdout)\n"
          "  --stats PATH       service stats JSON (schedule-"
          "dependent)\n"
          "  --spool PATH       write the queue manifest (JSONL)\n"
          "  --rev STR          revision tag for record keys "
          "(default \"svc\")\n"
          "\n"
          "Execution:\n"
          "  --in-process       deterministic virtual-clock engine\n"
          "  --workers N        worker processes (default 2)\n"
          "  --worker-bin PATH  gpucc_worker executable\n"
          "  --socket PATH      Unix-domain socket address\n"
          "  --lease-ms N       lease/heartbeat timeout (default "
          "2000)\n"
          "  --max-attempts N   failures before quarantine (default "
          "4)\n"
          "  --fault PLAN       chaos plan, e.g. "
          "\"w0:kill@3,w1:stall@2x400\"\n"
          "  --halt-after N     stop after N new results (crash "
          "simulation;\n"
          "                     in-process engine only)\n";
}

bool
needValue(int argc, int i, const char *flag)
{
    if (i + 1 >= argc) {
        std::cerr << "gpucc_sweepd: " << flag << " needs a value\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gpucc;
    svc::CoordinatorConfig cfg;
    std::string specPath, ledgerPath, reportPath, statsPath;
    std::string rev = "svc";
    std::string faultText;
    bool builtin = false;
    bool withBroken = false;
    bool inProcess = false;
    std::size_t haltAfter = 0;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "-h") || !std::strcmp(a, "--help")) {
            usage(std::cout);
            return 0;
        } else if (!std::strcmp(a, "--spec")) {
            if (!needValue(argc, i, a))
                return 2;
            specPath = argv[++i];
        } else if (!std::strcmp(a, "--builtin")) {
            builtin = true;
        } else if (!std::strcmp(a, "--with-broken")) {
            withBroken = true;
        } else if (!std::strcmp(a, "--ledger")) {
            if (!needValue(argc, i, a))
                return 2;
            ledgerPath = argv[++i];
        } else if (!std::strcmp(a, "--report")) {
            if (!needValue(argc, i, a))
                return 2;
            reportPath = argv[++i];
        } else if (!std::strcmp(a, "--stats")) {
            if (!needValue(argc, i, a))
                return 2;
            statsPath = argv[++i];
        } else if (!std::strcmp(a, "--spool")) {
            if (!needValue(argc, i, a))
                return 2;
            cfg.spoolPath = argv[++i];
        } else if (!std::strcmp(a, "--rev")) {
            if (!needValue(argc, i, a))
                return 2;
            rev = argv[++i];
        } else if (!std::strcmp(a, "--in-process")) {
            inProcess = true;
        } else if (!std::strcmp(a, "--workers")) {
            if (!needValue(argc, i, a))
                return 2;
            cfg.workers = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (!std::strcmp(a, "--worker-bin")) {
            if (!needValue(argc, i, a))
                return 2;
            cfg.workerBin = argv[++i];
        } else if (!std::strcmp(a, "--socket")) {
            if (!needValue(argc, i, a))
                return 2;
            cfg.socketPath = argv[++i];
        } else if (!std::strcmp(a, "--lease-ms")) {
            if (!needValue(argc, i, a))
                return 2;
            cfg.retry.leaseTimeout =
                std::strtoull(argv[++i], nullptr, 0);
        } else if (!std::strcmp(a, "--max-attempts")) {
            if (!needValue(argc, i, a))
                return 2;
            cfg.retry.maxAttempts = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (!std::strcmp(a, "--fault")) {
            if (!needValue(argc, i, a))
                return 2;
            faultText = argv[++i];
        } else if (!std::strcmp(a, "--halt-after")) {
            if (!needValue(argc, i, a))
                return 2;
            haltAfter = std::strtoull(argv[++i], nullptr, 0);
        } else {
            std::cerr << "gpucc_sweepd: unknown option " << a << "\n";
            usage(std::cerr);
            return 2;
        }
    }

    std::string err;
    if (!faultText.empty() &&
        !svc::ProcessFaultPlan::parse(faultText, cfg.faults, err)) {
        std::cerr << "gpucc_sweepd: --fault " << err << "\n";
        return 2;
    }

    svc::SweepSpec spec;
    if (builtin && specPath.empty()) {
        spec = svc::builtinSoakSpec(withBroken);
    } else if (!specPath.empty() && !builtin) {
        std::ifstream is(specPath);
        if (!is.good()) {
            std::cerr << "gpucc_sweepd: cannot read " << specPath
                      << "\n";
            return 2;
        }
        std::stringstream ss;
        ss << is.rdbuf();
        if (!svc::SweepSpec::parse(ss.str(), spec, err)) {
            std::cerr << "gpucc_sweepd: " << specPath << ": " << err
                      << "\n";
            return 2;
        }
    } else {
        std::cerr << "gpucc_sweepd: need exactly one of --spec or "
                     "--builtin\n";
        usage(std::cerr);
        return 2;
    }

    setVerbose(false);
    svc::ResultStore store(ledgerPath, rev);
    svc::ServiceOutcome outcome;
    if (inProcess || cfg.workers == 0) {
        svc::ServiceConfig sc;
        sc.workers = cfg.workers != 0 ? cfg.workers : 2;
        sc.faults = cfg.faults;
        sc.haltAfterResults = haltAfter;
        outcome = svc::runService(spec, sc, store);
    } else {
        if (haltAfter != 0) {
            std::cerr << "gpucc_sweepd: --halt-after needs "
                         "--in-process\n";
            return 2;
        }
        outcome = svc::runCoordinator(spec, cfg, store);
    }

    // A halted (crash-simulated) run must not publish a canonical
    // report: the resumed run writes it once the sweep is whole.
    if (!outcome.stats.halted) {
        if (reportPath.empty()) {
            svc::writeCanonicalReport(spec, outcome, std::cout);
        } else {
            const std::string tmp = reportPath + ".tmp";
            std::ofstream os(tmp, std::ios::binary);
            svc::writeCanonicalReport(spec, outcome, os);
            os.close();
            if (!os.good() ||
                std::rename(tmp.c_str(), reportPath.c_str()) != 0) {
                std::cerr << "gpucc_sweepd: cannot write "
                          << reportPath << "\n";
                return 4;
            }
        }
    }
    if (!statsPath.empty()) {
        std::ofstream os(statsPath, std::ios::binary);
        svc::writeServiceStats(outcome, os);
    }
    for (const std::string &e : outcome.stats.errors)
        std::cerr << "gpucc_sweepd: " << e << "\n";

    if (outcome.stats.halted)
        return 3;
    return outcome.missing.empty() ? 0 : 4;
}

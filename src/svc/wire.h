/**
 * @file
 * Wire protocol between gpucc_sweepd (coordinator) and gpucc_worker:
 * newline-delimited JSON objects over a Unix-domain stream socket,
 * strict request/reply lockstep initiated by the worker.
 *
 *   worker -> coordinator          coordinator -> worker
 *   {"type":"hello","worker":W}    {"type":"ok"}
 *   {"type":"heartbeat",...}       {"type":"ok"}
 *   {"type":"claim",...}           {"type":"grant",cell...,lease}
 *                                | {"type":"nowork","drained":B,
 *                                   "retry_ms":N}
 *   {"type":"result",...}          {"type":"ok"}
 *
 * The framing is deliberately the ledger's: one JSON object per line,
 * u64s as "0x..." strings, written with the shared JsonWriter and
 * parsed with the verify JSON reader. A malformed line is a protocol
 * error answered with {"type":"error"} and logged, never a crash:
 * byzantine workers are just another failure mode the lease queue
 * already absorbs.
 */

#ifndef GPUCC_SVC_WIRE_H
#define GPUCC_SVC_WIRE_H

#include <cstdint>
#include <string>

#include "svc/spec.h"

namespace gpucc::svc::wire
{

/** Decoded form of any protocol message (fields used per type). */
struct Message
{
    std::string type;   //!< "hello", "claim", "grant", ...
    std::string worker; //!< sender name (worker -> coordinator)
    CellSpec cell;      //!< grant: the leased cell
    std::uint64_t leaseId = 0; //!< grant / result
    CellOutcome outcome;       //!< result payload
    bool drained = false;      //!< nowork: queue fully done, exit
    std::uint64_t retryMs = 0; //!< nowork: back off before re-claim
    std::string error;         //!< error replies
};

std::string encodeHello(const std::string &worker);
std::string encodeClaim(const std::string &worker);
std::string encodeHeartbeat(const std::string &worker);
std::string encodeResult(const std::string &worker,
                         const CellSpec &cell, std::uint64_t leaseId,
                         const CellOutcome &outcome);
std::string encodeGrant(const CellSpec &cell, std::uint64_t leaseId);
std::string encodeNoWork(bool drained, std::uint64_t retryMs);
std::string encodeOk();
std::string encodeError(const std::string &what);

/** Parse one line. @return false with @p error set when it is not a
 *  well-formed protocol message. */
bool decode(const std::string &line, Message &out, std::string &error);

/** Write @p line + '\n' to @p fd, retrying short writes.
 *  @return false on EPIPE/error (peer died). */
bool sendLine(int fd, const std::string &line);

/** Incremental line splitter over a streamed byte feed. */
class LineBuffer
{
  public:
    void feed(const char *data, std::size_t n)
    {
        pending.append(data, n);
    }

    /** Pop the next complete line (without '\n') into @p line. */
    bool
    next(std::string &line)
    {
        const std::size_t nl = pending.find('\n');
        if (nl == std::string::npos)
            return false;
        line.assign(pending, 0, nl);
        pending.erase(0, nl + 1);
        return true;
    }

  private:
    std::string pending;
};

} // namespace gpucc::svc::wire

#endif // GPUCC_SVC_WIRE_H

/**
 * @file
 * Sweep specifications for the fault-tolerant sweep service.
 *
 * A SweepSpec names a grid of cells: (scenario kind x architecture x
 * plan x seed repeat). Expansion is a pure function — cell index i
 * always denotes the same (scenario, arch, plan, config, seed) point,
 * and the per-cell seed is deriveSeed(seedBase, i) — so a coordinator
 * that crashes and resumes, or shards the grid across workers in any
 * order, still runs exactly the same cells. runCell() executes one
 * cell through the existing measurement machinery (scenarios.h) and
 * never throws: a failing cell reports outcome "error" with the
 * exception text, which is what lets the service retry or quarantine
 * it instead of dying with it.
 */

#ifndef GPUCC_SVC_SPEC_H
#define GPUCC_SVC_SPEC_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gpucc::svc
{

/** One fully-resolved sweep cell: the unit of distribution. */
struct CellSpec
{
    std::size_t index = 0;  //!< position in the expanded grid
    std::string scenario;   //!< cell kind ("l1_baseline", "session", ...)
    std::string arch;       //!< generation name ("Kepler", ...)
    std::string plan;       //!< fault plan for session cells ("" = none)
    std::string config;     //!< "key=value;key=value" knobs
    std::uint64_t seed = 0; //!< deriveSeed(spec.seedBase, index)
};

/** One row of a sweep grid: a scenario kind with its plan/config. */
struct CellKind
{
    std::string scenario;
    std::string plan;
    std::string config;
};

/** A sweep specification: rows x architectures x seed repeats. */
struct SweepSpec
{
    std::string name = "sweep";
    std::uint64_t seedBase = 2017;
    unsigned seedsPerCell = 1;
    std::vector<std::string> archs; //!< generation names
    std::vector<CellKind> kinds;

    /** Expand into the flat, index-stable cell list (kind-major,
     *  then arch, then seed repeat). */
    std::vector<CellSpec> expand() const;

    /** Parse from JSON text (see docs/DESIGN.md section 10 for the
     *  schema). @return false with @p error set on malformed input. */
    static bool parse(const std::string &text, SweepSpec &out,
                      std::string &error);
    /** Serialize to JSON (round-trips through parse()). */
    std::string toJson() const;
};

/** What one executed cell produced. */
struct CellOutcome
{
    std::string outcome;      //!< "complete" or "error"
    std::string error;        //!< exception text when outcome=="error"
    std::uint64_t digest = 0; //!< device digest (session cells)
    std::map<std::string, double> metrics;
};

/**
 * Execute one cell on the calling thread. Dispatches on
 * cell.scenario:
 *  - "l1_baseline": measureL1Baseline (config "bits=N", default 24)
 *  - "session": measureSessionOverPlan (config "payload=N" bits,
 *    default 96; plan "" runs as "quiet")
 *  - "flaky": test kind — throws (caught into outcome "error") when
 *    splitmix64(seed) % den < num for config "fail=num/den", so a
 *    given cell fails deterministically or succeeds deterministically
 *  - "broken": test kind — always throws (drives quarantine paths)
 * Unknown scenarios and unknown architectures report outcome "error".
 * Never throws.
 */
CellOutcome runCell(const CellSpec &cell);

/** Parse "key=value;key=value" config strings; @p fallback when the
 *  key is absent or malformed. */
unsigned configValue(const std::string &config, const std::string &key,
                     unsigned fallback);

/** The small built-in spec CI and the soak harness sweep: every
 *  architecture, an L1 baseline row, two session rows, and (when
 *  @p withBroken) one always-failing row to exercise quarantine. */
SweepSpec builtinSoakSpec(bool withBroken);

} // namespace gpucc::svc

#endif // GPUCC_SVC_SPEC_H

/**
 * @file
 * Streaming multiprocessor: warp schedulers plus the occupancy
 * accounting (threads, blocks, warps, registers, shared memory) that
 * the leftover block-scheduling policy checks — and that the paper's
 * Section 8 exclusive-co-location trick deliberately saturates.
 */

#ifndef GPUCC_GPU_SM_H
#define GPUCC_GPU_SM_H

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "gpu/arch_params.h"
#include "gpu/kernel.h"
#include "gpu/warp_scheduler.h"

namespace gpucc::metrics
{
class Registry;
} // namespace gpucc::metrics

namespace gpucc::gpu
{

class Device;
class ThreadBlock;

/** Occupancy snapshot of an SM. */
struct SmOccupancy
{
    unsigned blocks = 0;
    unsigned threads = 0;
    unsigned warps = 0;
    std::uint32_t regs = 0;
    std::size_t smemBytes = 0;
};

/** One streaming multiprocessor. */
class Sm
{
  public:
    Sm(Device &dev, unsigned id);

    /** SM id (%smid). */
    unsigned id() const { return smId; }

    /** Owning device. */
    Device &device() { return *dev; }

    /** Scheduler @p i (0-based). */
    WarpScheduler &scheduler(unsigned i);

    /** Number of warp schedulers. */
    unsigned numSchedulers() const;

    /** @return true when a block with @p cfg fits in leftover capacity. */
    bool canHost(const LaunchConfig &cfg) const;

    /**
     * Intra-SM partitioning admission (Warped-Slicer-style, Section
     * 3.2): at most @p maxKernels kernels co-resident, each capped at a
     * 1/maxKernels share of every resource.
     */
    bool canHostPartitioned(const LaunchConfig &cfg, std::uint64_t kernelId,
                            unsigned maxKernels = 2) const;

    /** Reserve resources for a block of kernel @p kernelId. */
    void reserve(const LaunchConfig &cfg, std::uint64_t kernelId);

    /** Release resources of a block of kernel @p kernelId. */
    void release(const LaunchConfig &cfg, std::uint64_t kernelId);

    /** Current occupancy. */
    const SmOccupancy &occupancy() const { return occ; }

    /** Occupancy attributed to kernel @p kernelId (zero if absent). */
    SmOccupancy kernelOccupancy(std::uint64_t kernelId) const;

    /** Number of distinct kernels with resident blocks. */
    unsigned residentKernels() const
    {
        return static_cast<unsigned>(perKernel.size());
    }

    /** @return true when nothing is resident. */
    bool idle() const { return occ.blocks == 0; }

    /** Expose per-SM occupancy gauges in @p reg (Device calls once). */
    void registerMetrics(metrics::Registry &reg);

    /**
     * Next warp -> scheduler assignment. The counter runs round-robin
     * across *all* blocks resident on the SM (Section 3.1): a second
     * kernel's warps continue where the first kernel's stopped, which
     * is what balances trojan+spy warps across schedulers. It resets
     * when the SM drains.
     */
    unsigned takeSchedulerSlot();

    /**
     * Complete mutable state, for device snapshot/fork: occupancy, the
     * per-kernel attribution map, the cross-block scheduler round-robin
     * cursor, and every scheduler's pipeline timelines.
     */
    struct State
    {
        SmOccupancy occ;
        std::map<std::uint64_t, SmOccupancy> perKernel;
        unsigned warpRR = 0;
        std::vector<WarpScheduler::State> schedulers;
    };

    /** Capture the full SM state. */
    State captureState() const;

    /** Restore state captured from a same-architecture SM. */
    void restoreState(const State &s);

  private:
    Device *dev;
    unsigned smId;
    std::vector<std::unique_ptr<WarpScheduler>> schedulers;
    SmOccupancy occ;
    std::map<std::uint64_t, SmOccupancy> perKernel;
    unsigned warpRR = 0;
};

} // namespace gpucc::gpu

#endif // GPUCC_GPU_SM_H

/**
 * @file
 * Device-side API available to warp programs.
 *
 * WarpCtx mirrors what a CUDA kernel can do on real hardware: read the
 * SM cycle counter (clock()), read the SM id (%smid), issue arithmetic
 * to the functional units, load from constant memory, perform global
 * memory loads/stores/atomics, and synchronize the thread block. All
 * operations are awaitables that charge simulated time.
 */

#ifndef GPUCC_GPU_WARP_CTX_H
#define GPUCC_GPU_WARP_CTX_H

#include <coroutine>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "gpu/arch_params.h"
#include "gpu/device_task.h"

namespace gpucc::gpu
{

class Device;
class Sm;
class ThreadBlock;
class Warp;

/** Execution context of one warp (SIMT at warp granularity). */
class WarpCtx
{
  public:
    WarpCtx(Device &dev, Sm &sm, ThreadBlock &block, Warp &warp);

    /**
     * Generic awaitable produced by timed SM-local operations (compute,
     * sleep, clock, shared memory, L1-resolved loads). When the event
     * queue proves no foreign work can interleave before the wakeup
     * tick, await_ready() advances the clock and the warp continues
     * inline — the common case in steady-state channel loops.
     */
    class Await
    {
      public:
        Await(WarpCtx &c, Tick resumeAt, std::uint64_t value)
            : ctx(&c), when(resumeAt), result(value)
        {
        }

        bool await_ready() const noexcept;
        void await_suspend(std::coroutine_handle<> h) const;
        std::uint64_t await_resume() const noexcept { return result; }

      private:
        WarpCtx *ctx;
        Tick when;
        std::uint64_t result;
    };

    /**
     * Awaitable for constLoad(). Computation is deferred to the await
     * so a warp that ran ahead of same-tick peers re-enters the event
     * queue (restoring global FIFO order) before an access that could
     * leave its SM; a probe-verified L1 hit stays on the inline path.
     */
    class LoadAwait
    {
      public:
        LoadAwait(WarpCtx &c, Addr a) : ctx(&c), addr(a) {}

        bool await_ready() noexcept;
        void await_suspend(std::coroutine_handle<> h) noexcept;
        std::uint64_t await_resume() const noexcept { return result; }

      private:
        friend class WarpCtx;

        /** Issue dispatch + cache access; sets when/result. */
        void compute() noexcept;

        WarpCtx *ctx;
        Addr addr;
        Tick when = 0;
        std::uint64_t result = 0;
        bool computed = false;
    };

    /**
     * Awaitable for the global-memory operations (atomics, loads,
     * stores). Always cross-SM, so a ran-ahead warp re-enters the queue
     * before the access executes. The lane vector is borrowed from the
     * co_await full-expression, which outlives any suspension.
     */
    class GmemAwait
    {
      public:
        enum class Kind : std::uint8_t
        {
            AtomicAdd,
            Load,
            Store,
        };

        GmemAwait(WarpCtx &c, Kind k, const std::vector<Addr> &lanes,
                  std::uint64_t v = 0)
            : ctx(&c), laneAddrs(&lanes), value(v), kind(k)
        {
        }

        bool await_ready() noexcept;
        void await_suspend(std::coroutine_handle<> h) noexcept;
        std::uint64_t await_resume() const noexcept { return result; }

      private:
        friend class WarpCtx;

        /** Issue dispatch + LDST port + memory op; sets when/result. */
        void compute() noexcept;

        WarpCtx *ctx;
        const std::vector<Addr> *laneAddrs;
        std::uint64_t value;
        Tick when = 0;
        std::uint64_t result = 0;
        Kind kind;
        bool computed = false;
    };

    /** Awaitable for __syncthreads(); resumed by the block barrier. */
    class BarrierAwait
    {
      public:
        explicit BarrierAwait(WarpCtx &c) : ctx(&c) {}

        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<> h) const;
        void await_resume() const noexcept {}

      private:
        WarpCtx *ctx;
    };

    // ---- Timing / identification primitives -------------------------

    /**
     * Read the SM cycle counter (CUDA clock()). The returned value is
     * quantized to the architecture's clock read granularity, modeling
     * the paper's observation that timing short code segments is
     * unreliable.
     */
    Await clock();

    /** SM the warp is resident on (%smid register). */
    unsigned smid() const;

    /** Block id within the grid. */
    unsigned blockId() const;

    /** Warp index within the block. */
    unsigned warpInBlock() const;

    /** Global warp index within the grid. */
    unsigned globalWarpId() const;

    /** Warp scheduler this warp was assigned to (round-robin). */
    unsigned schedulerId() const;

    /** Global thread id of lane @p lane in this warp. */
    unsigned threadId(unsigned lane) const;

    // ---- Compute ------------------------------------------------------

    /**
     * Execute one warp instruction of class @p op.
     *
     * Exactly one instruction per await: reservations on the shared
     * issue ports must happen in global time order for contention to be
     * causal, so dependent chains are written as kernel-side loops.
     *
     * @return elapsed cycles from issue to completion (queueing +
     *         occupancy + pipeline latency).
     */
    Await op(OpClass op);

    /** Idle (no-issue) wait of @p cycles. */
    Await sleep(Cycle cycles);

    // ---- Constant memory ----------------------------------------------

    /** Broadcast load of one constant address; result = latency cycles. */
    LoadAwait constLoad(Addr addr) { return LoadAwait(*this, addr); }

    /**
     * Dependent sequence of constant loads (the strided prime/probe
     * loops). Issues one load per event so port/cache reservations stay
     * causal with concurrent warps (a one-shot booking of the whole
     * sequence would let one warp reserve the port timeline far into
     * the future and starve its contenders unrealistically).
     *
     * @return total elapsed cycles for the whole sequence.
     */
    DeviceTask<std::uint64_t> constLoadSeq(std::vector<Addr> addrs);

    // ---- Global memory --------------------------------------------------

    /**
     * Warp-wide atomic add; per-lane addresses. Result = latency cycles.
     */
    GmemAwait atomicAdd(const std::vector<Addr> &laneAddrs,
                        std::uint64_t value = 1)
    {
        return GmemAwait(*this, GmemAwait::Kind::AtomicAdd, laneAddrs,
                         value);
    }

    /** Warp-wide global load; result = latency cycles. */
    GmemAwait globalLoad(const std::vector<Addr> &laneAddrs)
    {
        return GmemAwait(*this, GmemAwait::Kind::Load, laneAddrs);
    }

    /** Warp-wide global store; result = latency cycles. */
    GmemAwait globalStore(const std::vector<Addr> &laneAddrs)
    {
        return GmemAwait(*this, GmemAwait::Kind::Store, laneAddrs);
    }

    // ---- Shared memory ---------------------------------------------------

    /**
     * Warp-wide shared-memory access with per-lane byte offsets into the
     * block's allocation. Lanes hitting the same bank serialize: the
     * latency is base + (maxLanesPerBank - 1) * conflictPenalty. This is
     * the self-contention artifact of Jiang et al. that Section 10 shows
     * CANNOT carry a covert channel: the serialization happens inside
     * the warp's own access and is invisible to competing kernels.
     *
     * @return elapsed cycles.
     */
    Await sharedAccess(const std::vector<Addr> &laneOffsets);

    /** Bank-conflict degree of a lane-offset pattern on this device. */
    unsigned bankConflictDegree(const std::vector<Addr> &laneOffsets) const;

    /** Functional write of one 4-byte word of block shared memory. */
    void smemWrite(Addr offset, std::uint32_t value);

    /** Functional read of one 4-byte word of block shared memory. */
    std::uint32_t smemRead(Addr offset) const;

    // ---- Synchronization ------------------------------------------------

    /** Block-wide barrier (__syncthreads()). */
    BarrierAwait syncthreads();

    // ---- Results ----------------------------------------------------------

    /** Append a value to this warp's output buffer (host-visible). */
    void out(std::uint64_t value);

    /** Owning device (characterization helpers peek at caches). */
    Device &device() { return *dev; }

    /**
     * The warp's logical time: the global clock, or the warp-local
     * ahead-clock when the elision fast path let this warp run past
     * pending events of other SMs. Every timed operation computes from
     * effNow(), so a ran-ahead warp keeps accumulating correct latency
     * while the global clock stays behind for its peers.
     */
    Tick effNow() const;

    /** Drop the warp-local ahead-clock (queue-ordered resume points). */
    void resetAheadClock() { aheadTick = 0; }

  private:
    friend class Await;
    friend class BarrierAwait;

    /**
     * Schedule @p h (the coroutine that just suspended — possibly a
     * nested DeviceTask, not the warp's top-level body) to resume at
     * @p when.
     */
    void scheduleResume(std::coroutine_handle<> h, Tick when) const;

    /**
     * Elision fast path: advance the warp-local clock to @p when and let
     * the warp continue inline when Device::canElideTo proves the skip
     * is unobservable. Marks the warp ran-ahead on success. The global
     * clock is NOT advanced: pending events of other SMs still fire at
     * their own ticks, and this warp simply computes from effNow().
     */
    bool tryElide(Tick when);

    /**
     * Must an operation that can leave this SM re-enter the event queue
     * before executing? True when the warp ran ahead and some pending
     * event fires at or before the warp's logical time — executing the
     * cross-SM access eagerly would mutate shared state (L2, global
     * memory) out of global order.
     */
    bool mustYieldCrossSm() const;

    /** Would a constant load of @p addr hit this SM's L1 right now? */
    bool probeL1Hit(Addr addr) const;

    /**
     * Re-enter the queue at effNow() — every event the warp ran ahead
     * of fires first — then compute @p aw and resume @p h. One overload
     * per deferred awaitable type.
     */
    void scheduleReentry(LoadAwait *aw, std::coroutine_handle<> h);
    void scheduleReentry(GmemAwait *aw, std::coroutine_handle<> h);

    /** Common body of the scheduleReentry overloads. */
    template <class AwaitT>
    void reentryImpl(AwaitT *aw, std::coroutine_handle<> h);

    /** Register @p h with the block barrier. */
    void enterBarrier(std::coroutine_handle<> h) const;

    /** Charge one instruction through dispatch + FU port. */
    Tick issueOp(OpClass op, Tick now) const;

    /** Charge the dispatch slot only (loads, clock reads). */
    Tick issueDispatch(Tick now) const;

    /** Apply the timer-fuzz mitigation to an observed latency. */
    std::uint64_t fuzzLatency(std::uint64_t cycles) const;

    /** Cache way-partition domain of this warp's application, or -1. */
    int partitionDomain() const;

    Device *dev;
    Sm *smPtr;
    ThreadBlock *blockPtr;
    Warp *warpPtr;
    Tick aheadTick = 0; //!< warp-local clock while ran-ahead (see effNow)
};

} // namespace gpucc::gpu

#endif // GPUCC_GPU_WARP_CTX_H

/**
 * @file
 * Device-side API available to warp programs.
 *
 * WarpCtx mirrors what a CUDA kernel can do on real hardware: read the
 * SM cycle counter (clock()), read the SM id (%smid), issue arithmetic
 * to the functional units, load from constant memory, perform global
 * memory loads/stores/atomics, and synchronize the thread block. All
 * operations are awaitables that charge simulated time.
 */

#ifndef GPUCC_GPU_WARP_CTX_H
#define GPUCC_GPU_WARP_CTX_H

#include <coroutine>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "gpu/arch_params.h"
#include "gpu/device_task.h"

namespace gpucc::gpu
{

class Device;
class Sm;
class ThreadBlock;
class Warp;

/** Execution context of one warp (SIMT at warp granularity). */
class WarpCtx
{
  public:
    WarpCtx(Device &dev, Sm &sm, ThreadBlock &block, Warp &warp);

    /** Generic awaitable produced by timed device operations. */
    class Await
    {
      public:
        Await(WarpCtx &c, Tick resumeAt, std::uint64_t value)
            : ctx(&c), when(resumeAt), result(value)
        {
        }

        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<> h) const;
        std::uint64_t await_resume() const noexcept { return result; }

      private:
        WarpCtx *ctx;
        Tick when;
        std::uint64_t result;
    };

    /** Awaitable for __syncthreads(); resumed by the block barrier. */
    class BarrierAwait
    {
      public:
        explicit BarrierAwait(WarpCtx &c) : ctx(&c) {}

        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<> h) const;
        void await_resume() const noexcept {}

      private:
        WarpCtx *ctx;
    };

    // ---- Timing / identification primitives -------------------------

    /**
     * Read the SM cycle counter (CUDA clock()). The returned value is
     * quantized to the architecture's clock read granularity, modeling
     * the paper's observation that timing short code segments is
     * unreliable.
     */
    Await clock();

    /** SM the warp is resident on (%smid register). */
    unsigned smid() const;

    /** Block id within the grid. */
    unsigned blockId() const;

    /** Warp index within the block. */
    unsigned warpInBlock() const;

    /** Global warp index within the grid. */
    unsigned globalWarpId() const;

    /** Warp scheduler this warp was assigned to (round-robin). */
    unsigned schedulerId() const;

    /** Global thread id of lane @p lane in this warp. */
    unsigned threadId(unsigned lane) const;

    // ---- Compute ------------------------------------------------------

    /**
     * Execute one warp instruction of class @p op.
     *
     * Exactly one instruction per await: reservations on the shared
     * issue ports must happen in global time order for contention to be
     * causal, so dependent chains are written as kernel-side loops.
     *
     * @return elapsed cycles from issue to completion (queueing +
     *         occupancy + pipeline latency).
     */
    Await op(OpClass op);

    /** Idle (no-issue) wait of @p cycles. */
    Await sleep(Cycle cycles);

    // ---- Constant memory ----------------------------------------------

    /** Broadcast load of one constant address; result = latency cycles. */
    Await constLoad(Addr addr);

    /**
     * Dependent sequence of constant loads (the strided prime/probe
     * loops). Issues one load per event so port/cache reservations stay
     * causal with concurrent warps (a one-shot booking of the whole
     * sequence would let one warp reserve the port timeline far into
     * the future and starve its contenders unrealistically).
     *
     * @return total elapsed cycles for the whole sequence.
     */
    DeviceTask<std::uint64_t> constLoadSeq(std::vector<Addr> addrs);

    // ---- Global memory --------------------------------------------------

    /**
     * Warp-wide atomic add; per-lane addresses. Result = latency cycles.
     */
    Await atomicAdd(const std::vector<Addr> &laneAddrs,
                    std::uint64_t value = 1);

    /** Warp-wide global load; result = latency cycles. */
    Await globalLoad(const std::vector<Addr> &laneAddrs);

    /** Warp-wide global store; result = latency cycles. */
    Await globalStore(const std::vector<Addr> &laneAddrs);

    // ---- Shared memory ---------------------------------------------------

    /**
     * Warp-wide shared-memory access with per-lane byte offsets into the
     * block's allocation. Lanes hitting the same bank serialize: the
     * latency is base + (maxLanesPerBank - 1) * conflictPenalty. This is
     * the self-contention artifact of Jiang et al. that Section 10 shows
     * CANNOT carry a covert channel: the serialization happens inside
     * the warp's own access and is invisible to competing kernels.
     *
     * @return elapsed cycles.
     */
    Await sharedAccess(const std::vector<Addr> &laneOffsets);

    /** Bank-conflict degree of a lane-offset pattern on this device. */
    unsigned bankConflictDegree(const std::vector<Addr> &laneOffsets) const;

    /** Functional write of one 4-byte word of block shared memory. */
    void smemWrite(Addr offset, std::uint32_t value);

    /** Functional read of one 4-byte word of block shared memory. */
    std::uint32_t smemRead(Addr offset) const;

    // ---- Synchronization ------------------------------------------------

    /** Block-wide barrier (__syncthreads()). */
    BarrierAwait syncthreads();

    // ---- Results ----------------------------------------------------------

    /** Append a value to this warp's output buffer (host-visible). */
    void out(std::uint64_t value);

    /** Owning device (characterization helpers peek at caches). */
    Device &device() { return *dev; }

  private:
    friend class Await;
    friend class BarrierAwait;

    /**
     * Schedule @p h (the coroutine that just suspended — possibly a
     * nested DeviceTask, not the warp's top-level body) to resume at
     * @p when.
     */
    void scheduleResume(std::coroutine_handle<> h, Tick when) const;

    /** Register @p h with the block barrier. */
    void enterBarrier(std::coroutine_handle<> h) const;

    /** Charge one instruction through dispatch + FU port. */
    Tick issueOp(OpClass op, Tick now) const;

    /** Charge the dispatch slot only (loads, clock reads). */
    Tick issueDispatch(Tick now) const;

    /** Apply the timer-fuzz mitigation to an observed latency. */
    std::uint64_t fuzzLatency(std::uint64_t cycles) const;

    /** Cache way-partition domain of this warp's application, or -1. */
    int partitionDomain() const;

    Device *dev;
    Sm *smPtr;
    ThreadBlock *blockPtr;
    Warp *warpPtr;
};

} // namespace gpucc::gpu

#endif // GPUCC_GPU_WARP_CTX_H

/**
 * @file
 * Warp scheduler model: the per-scheduler dispatch slots and the
 * functional-unit issue ports it fronts.
 *
 * The paper's central Section 5 observation is that functional-unit
 * contention is isolated to warps sharing a warp scheduler — on Maxwell
 * because each quadrant has dedicated units, and on Fermi/Kepler because
 * issue bandwidth to the soft-shared units is still per-scheduler. The
 * model therefore gives every scheduler its own issue-port timeline per
 * FU type, sized as (units per SM) / (schedulers per SM).
 */

#ifndef GPUCC_GPU_WARP_SCHEDULER_H
#define GPUCC_GPU_WARP_SCHEDULER_H

#include <memory>

#include "gpu/arch_params.h"
#include "sim/resource_pool.h"

namespace gpucc::gpu
{

/** One warp scheduler (or Maxwell quadrant) inside an SM. */
class WarpScheduler
{
  public:
    /**
     * @param arch Architecture parameters.
     * @param smId Hosting SM id (debug names only).
     * @param schedId Scheduler index within the SM.
     */
    WarpScheduler(const ArchParams &arch, unsigned smId, unsigned schedId);

    /** Dispatch-slot pool (k = dispatch units per scheduler). */
    sim::ResourcePool &dispatch() { return dispatchPool; }

    /** Issue port fronting units of type @p fu. */
    sim::ResourcePool &port(FuType fu);

    /** Scheduler index within the SM. */
    unsigned id() const { return schedId; }

    /** Complete pipeline-timeline state, for device snapshot/fork. */
    struct State
    {
        sim::ResourcePool::State dispatch;
        sim::ResourcePool::State sp;
        sim::ResourcePool::State dp;
        sim::ResourcePool::State sfu;
        sim::ResourcePool::State ldst;
    };

    /** Capture every issue-port timeline. */
    State
    captureState() const
    {
        return State{dispatchPool.captureState(), spPort.captureState(),
                     dpPort.captureState(), sfuPort.captureState(),
                     ldstPort.captureState()};
    }

    /** Restore state captured from a same-shape scheduler. */
    void
    restoreState(const State &s)
    {
        dispatchPool.restoreState(s.dispatch);
        spPort.restoreState(s.sp);
        dpPort.restoreState(s.dp);
        sfuPort.restoreState(s.sfu);
        ldstPort.restoreState(s.ldst);
    }

  private:
    unsigned schedId;
    sim::ResourcePool dispatchPool;
    sim::ResourcePool spPort;
    sim::ResourcePool dpPort;
    sim::ResourcePool sfuPort;
    sim::ResourcePool ldstPort;
};

} // namespace gpucc::gpu

#endif // GPUCC_GPU_WARP_SCHEDULER_H

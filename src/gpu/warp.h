/**
 * @file
 * One resident warp: the coroutine execution wrapper plus its scheduler
 * binding. Warps are created when a thread block is placed on an SM and
 * are assigned to warp schedulers round-robin by warp index, the policy
 * the paper reverse engineers in Section 3.1.
 */

#ifndef GPUCC_GPU_WARP_H
#define GPUCC_GPU_WARP_H

#include <memory>

#include "common/types.h"
#include "gpu/warp_ctx.h"
#include "gpu/warp_program.h"
#include "sim/frame_arena.h"

namespace gpucc::gpu
{

class Device;
class Sm;
class ThreadBlock;

/** Execution state of a warp. */
enum class WarpState
{
    Created,   //!< not yet started
    Running,   //!< between events (suspended on an op)
    InBarrier, //!< waiting on __syncthreads()
    Finished,  //!< body returned
};

/** A warp resident on an SM. */
class Warp
{
  public:
    /**
     * @param block Owning thread block.
     * @param warpInBlock Warp index within the block.
     * @param schedulerId Warp scheduler the warp is bound to.
     */
    Warp(ThreadBlock &block, unsigned warpInBlock, unsigned schedulerId);
    ~Warp();

    // Warps churn once per kernel launch; recycle their storage through
    // the same thread-local arena as the coroutine frames.
    static void *
    operator new(std::size_t n)
    {
        return sim::FrameArena::allocate(n);
    }

    static void
    operator delete(void *p) noexcept
    {
        sim::FrameArena::deallocate(p);
    }

    Warp(const Warp &) = delete;
    Warp &operator=(const Warp &) = delete;

    /** Instantiate the kernel body coroutine for this warp. */
    void bindBody();

    /** Start / resume the top-level body (called from event context). */
    void resumeNow();

    /**
     * Resume a specific suspended coroutine of this warp (the top-level
     * body or a nested DeviceTask) and detect body completion.
     */
    void resumeHandle(std::coroutine_handle<> h);

    /**
     * Resume from a counted per-warp queue event: retires the device's
     * pending-wakeup census entry and clears the ran-ahead flag (a
     * queue-ordered resume is by definition back in FIFO position).
     */
    void resumeFromEvent(std::coroutine_handle<> h);

    /**
     * The warp advanced its local clock inline past pending wakeups of
     * other SMs (elision fast path). While set, operations that leave
     * the SM re-enter the event queue before executing so cross-SM state
     * is still mutated in global FIFO order. Clearing the flag also
     * drops the warp-local ahead-clock: it is only called at points
     * where the global clock caught up with the warp's logical time.
     */
    bool ranAhead() const { return ranAheadFlag; }
    void setRanAhead() { ranAheadFlag = true; }
    void clearRanAhead()
    {
        ranAheadFlag = false;
        ctx.resetAheadClock();
    }

    /** Mark the warp as parked in the block barrier. */
    void parkInBarrier() { state = WarpState::InBarrier; }

    /**
     * Cancel the warp (SMK preemption): pending resume events become
     * no-ops and the coroutine frame is simply never resumed again.
     */
    void cancel() { cancelledFlag = true; }

    /** @return true once cancelled. */
    bool cancelled() const { return cancelledFlag; }

    /** @return current state. */
    WarpState warpState() const { return state; }

    /** @return true once the body completed. */
    bool finished() const { return state == WarpState::Finished; }

    /** Warp index within its block. */
    unsigned indexInBlock() const { return warpIdx; }

    /** Warp scheduler binding. */
    unsigned schedulerId() const { return schedId; }

    /** Owning block. */
    ThreadBlock &block() { return *parent; }

    /** Device-side context. */
    WarpCtx &context() { return ctx; }

  private:
    ThreadBlock *parent;
    unsigned warpIdx;
    unsigned schedId;
    WarpState state = WarpState::Created;
    bool cancelledFlag = false;
    bool ranAheadFlag = false;
    WarpCtx ctx; //!< embedded: one allocation per warp, not two
    WarpProgram program;
};

} // namespace gpucc::gpu

#endif // GPUCC_GPU_WARP_H

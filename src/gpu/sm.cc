#include "gpu/sm.h"

#include "common/log.h"
#include "gpu/device.h"

namespace gpucc::gpu
{

Sm::Sm(Device &dev_, unsigned id)
    : dev(&dev_), smId(id)
{
    const ArchParams &arch = dev_.arch();
    for (unsigned s = 0; s < arch.schedulersPerSm; ++s)
        schedulers.push_back(
            std::make_unique<WarpScheduler>(arch, smId, s));
}

WarpScheduler &
Sm::scheduler(unsigned i)
{
    GPUCC_ASSERT(i < schedulers.size(), "sm%u: bad scheduler %u", smId, i);
    return *schedulers[i];
}

unsigned
Sm::numSchedulers() const
{
    return static_cast<unsigned>(schedulers.size());
}

void
Sm::registerMetrics(metrics::Registry &reg)
{
    // Per-SM occupancy: what a co-location probe (or a defender
    // watching for the exclusive-colocation seal) observes over time.
    reg.gauge(strfmt("sm%u.occupancy.warps", smId),
              [this] { return static_cast<double>(occ.warps); });
    reg.gauge(strfmt("sm%u.occupancy.blocks", smId),
              [this] { return static_cast<double>(occ.blocks); });
    reg.gauge(strfmt("sm%u.occupancy.smemBytes", smId),
              [this] { return static_cast<double>(occ.smemBytes); });
}

bool
Sm::canHost(const LaunchConfig &cfg) const
{
    const SmLimits &lim = dev->arch().limits;
    if (cfg.smemBytesPerBlock > lim.smemPerBlockBytes)
        return false; // can never launch anywhere
    if (occ.blocks + 1 > lim.maxBlocks)
        return false;
    if (occ.threads + cfg.threadsPerBlock > lim.maxThreads)
        return false;
    if (occ.warps + cfg.warpsPerBlock() > lim.maxWarps)
        return false;
    if (occ.regs + cfg.regsPerThread * cfg.threadsPerBlock > lim.numRegs)
        return false;
    if (occ.smemBytes + cfg.smemBytesPerBlock > lim.smemBytes)
        return false;
    return true;
}

namespace
{

void
addOcc(SmOccupancy &o, const LaunchConfig &cfg)
{
    o.blocks += 1;
    o.threads += cfg.threadsPerBlock;
    o.warps += cfg.warpsPerBlock();
    o.regs += cfg.regsPerThread * cfg.threadsPerBlock;
    o.smemBytes += cfg.smemBytesPerBlock;
}

void
subOcc(SmOccupancy &o, const LaunchConfig &cfg)
{
    o.blocks -= 1;
    o.threads -= cfg.threadsPerBlock;
    o.warps -= cfg.warpsPerBlock();
    o.regs -= cfg.regsPerThread * cfg.threadsPerBlock;
    o.smemBytes -= cfg.smemBytesPerBlock;
}

} // namespace

bool
Sm::canHostPartitioned(const LaunchConfig &cfg, std::uint64_t kernelId,
                       unsigned maxKernels) const
{
    const SmLimits &lim = dev->arch().limits;
    if (cfg.smemBytesPerBlock > lim.smemPerBlockBytes)
        return false;
    // Kernel-count cap.
    bool resident = perKernel.count(kernelId) > 0;
    if (!resident && residentKernels() >= maxKernels)
        return false;
    // Fair-share cap on every resource for this kernel's slice.
    SmOccupancy mine = kernelOccupancy(kernelId);
    unsigned share = maxKernels;
    if (mine.blocks + 1 > std::max(1u, lim.maxBlocks / share))
        return false;
    if (mine.threads + cfg.threadsPerBlock > lim.maxThreads / share)
        return false;
    if (mine.warps + cfg.warpsPerBlock() > lim.maxWarps / share)
        return false;
    if (mine.regs + cfg.regsPerThread * cfg.threadsPerBlock >
        lim.numRegs / share) {
        return false;
    }
    if (mine.smemBytes + cfg.smemBytesPerBlock > lim.smemBytes / share)
        return false;
    return true;
}

void
Sm::reserve(const LaunchConfig &cfg, std::uint64_t kernelId)
{
    addOcc(occ, cfg);
    addOcc(perKernel[kernelId], cfg);
    const SmLimits &lim = dev->arch().limits;
    GPUCC_ASSERT(occ.threads <= lim.maxThreads &&
                     occ.smemBytes <= lim.smemBytes &&
                     occ.regs <= lim.numRegs,
                 "sm%u: reserved beyond capacity", smId);
}

void
Sm::release(const LaunchConfig &cfg, std::uint64_t kernelId)
{
    GPUCC_ASSERT(occ.blocks >= 1, "sm%u: releasing an empty SM", smId);
    subOcc(occ, cfg);
    auto it = perKernel.find(kernelId);
    GPUCC_ASSERT(it != perKernel.end(), "sm%u: unknown kernel release",
                 smId);
    subOcc(it->second, cfg);
    if (it->second.blocks == 0)
        perKernel.erase(it);
    if (occ.blocks == 0)
        warpRR = 0;
}

SmOccupancy
Sm::kernelOccupancy(std::uint64_t kernelId) const
{
    auto it = perKernel.find(kernelId);
    return it == perKernel.end() ? SmOccupancy{} : it->second;
}

unsigned
Sm::takeSchedulerSlot()
{
    unsigned n = static_cast<unsigned>(schedulers.size());
    // Section 9 mitigation: randomized assignment destroys the
    // per-scheduler bit lanes the parallel channels rely on.
    if (dev->mitigations().randomizeWarpSchedulers) {
        return static_cast<unsigned>(
            dev->deviceRng().uniformInt(0, static_cast<int>(n) - 1));
    }
    unsigned s = warpRR % n;
    ++warpRR;
    return s;
}

Sm::State
Sm::captureState() const
{
    State s;
    s.occ = occ;
    s.perKernel = perKernel;
    s.warpRR = warpRR;
    s.schedulers.reserve(schedulers.size());
    for (const auto &sched : schedulers)
        s.schedulers.push_back(sched->captureState());
    return s;
}

void
Sm::restoreState(const State &s)
{
    GPUCC_ASSERT(s.schedulers.size() == schedulers.size(),
                 "sm%u: scheduler count mismatch in restore", smId);
    occ = s.occ;
    perKernel = s.perKernel;
    warpRR = s.warpRR;
    for (std::size_t i = 0; i < schedulers.size(); ++i)
        schedulers[i]->restoreState(s.schedulers[i]);
}

} // namespace gpucc::gpu

/**
 * @file
 * The simulated GPU device: SMs, constant-cache hierarchy, global
 * memory, block scheduler, streams, and the event queue that drives
 * everything.
 */

#ifndef GPUCC_GPU_DEVICE_H
#define GPUCC_GPU_DEVICE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/metrics/metrics.h"
#include "common/rng.h"
#include "gpu/arch_params.h"
#include "gpu/block_scheduler.h"
#include "gpu/kernel.h"
#include "gpu/mitigations.h"
#include "gpu/sm.h"
#include "gpu/stream.h"
#include "mem/const_memory.h"
#include "mem/global_memory.h"
#include "sim/event_queue.h"
#include "sim/trace/trace.h"

namespace gpucc::sim::fault
{
class FaultInjector;
} // namespace gpucc::sim::fault

namespace gpucc::gpu
{

class ThreadBlock;

/** A simulated GPGPU. */
class Device
{
  public:
    explicit Device(ArchParams arch);
    ~Device();

    Device(const Device &) = delete;
    Device &operator=(const Device &) = delete;

    /** Architecture parameters. */
    const ArchParams &arch() const { return params; }

    /** Event queue / current simulated tick. */
    sim::EventQueue &events() { return queue; }
    Tick now() const { return queue.now(); }

    /** Constant-memory hierarchy. */
    mem::ConstMemory &constMem() { return *cmem; }

    /** Global memory. */
    mem::GlobalMemory &globalMem() { return *gmem; }

    /** SM @p i. */
    Sm &sm(unsigned i);

    /** Number of SMs. */
    unsigned numSms() const { return static_cast<unsigned>(sms.size()); }

    /** Block scheduler. */
    BlockScheduler &blockScheduler() { return *blockSched; }

    /** Create a new stream. */
    Stream &createStream();

    /**
     * Create a kernel instance and submit it to @p stream, arriving at
     * the device at @p arrivalTick. (HostContext is the usual caller.)
     */
    KernelInstance &submit(Stream &stream, KernelLaunch launch,
                           Tick arrivalTick);

    /** Place one block of @p kernel on @p sm (block scheduler only). */
    void placeBlock(KernelInstance &kernel, Sm &sm);

    /** Called by a ThreadBlock when all of its warps completed. */
    void blockFinished(ThreadBlock &block);

    /** Preempt @p block (SMK policy): cancel it, release its SM slice,
     *  and requeue its block id for re-placement. */
    void preemptBlock(ThreadBlock &block);

    /** Blocks currently executing (not finished, not preempted). */
    std::vector<ThreadBlock *> liveBlocks();

    /** Run the event queue dry. */
    void runUntilIdle();

    /**
     * Run until @p kernel completes. Fatal if the queue drains first
     * (the kernel was starved, e.g. blocked by exclusive co-location).
     */
    void runUntilDone(const KernelInstance &kernel);

    /** @return true when @p kernel can never be placed given current
     *  residency (diagnostics for starvation scenarios). */
    bool starved(const KernelInstance &kernel) const;

    /**
     * Bump-allocate constant-space addresses (per application buffer).
     */
    Addr allocConst(std::size_t bytes, std::size_t align = 256);

    /** Bump-allocate global-space addresses. */
    Addr allocGlobal(std::size_t bytes, std::size_t align = 256);

    /** All kernel instances launched so far (diagnostics). */
    const std::vector<std::unique_ptr<KernelInstance>> &kernels() const
    {
        return instances;
    }

    /** Cycles between block placement and its warps starting. */
    static constexpr Cycle blockStartCycles = 100;

    /** Active Section 9 mitigations (all off by default). */
    const MitigationConfig &mitigations() const { return mitigationCfg; }

    /** Enable/disable mitigations (before launching kernels). */
    void setMitigations(const MitigationConfig &cfg) { mitigationCfg = cfg; }

    /** Device-internal RNG (scheduler randomization, timer fuzz). */
    Rng &deviceRng() { return rng; }

    /**
     * Fault-injection hooks (sim/fault). The injector registers itself
     * on arm() and detaches on destruction; device-side hot paths
     * (clock reads, latency fuzz, warp resumes) query it when present.
     * Null — the default — costs one predictable branch.
     */
    sim::fault::FaultInjector *faultHooks() const { return injector; }

    /** Attach/detach the fault injector (FaultInjector only). */
    void setFaultHooks(sim::fault::FaultInjector *inj) { injector = inj; }

    /**
     * The device's metrics registry. Every component registers its
     * instruments here at construction; collectStats() and the interval
     * snapshots read from it.
     */
    metrics::Registry &metricsRegistry() { return registry; }

    /**
     * Trace shard of this device, or null when tracing is off (the
     * default — same hook pattern as faultHooks()). Hot paths guard
     * with `if (auto *tr = traceShard(); tr && tr->wants(cat))`.
     */
    sim::trace::Shard *traceShard() const { return trace; }

    /**
     * Attach this device to @p session under @p label. Devices attach
     * automatically to the GPUCC_TRACE global session; explicit calls
     * are for tests and sweeps that need deterministic labels.
     */
    void attachTrace(sim::trace::TraceSession &session,
                     const std::string &label);

    /**
     * Sample the metrics registry every @p cycles of simulated time.
     * The sampler rides the event queue and stops rescheduling when the
     * queue otherwise drains, so runUntilIdle() still terminates.
     */
    void sampleMetricsEvery(Cycle cycles);

  private:
    /** Register the device-wide aggregate gauges. */
    void registerDeviceMetrics();

    /** Self-rescheduling interval sampler (see sampleMetricsEvery). */
    void scheduleMetricsSample(Tick period);

    ArchParams params;
    sim::EventQueue queue;
    std::unique_ptr<mem::ConstMemory> cmem;
    std::unique_ptr<mem::GlobalMemory> gmem;
    std::vector<std::unique_ptr<Sm>> sms;
    std::unique_ptr<BlockScheduler> blockSched;
    std::vector<std::unique_ptr<Stream>> streams;
    std::vector<std::unique_ptr<KernelInstance>> instances;
    std::vector<std::unique_ptr<ThreadBlock>> blocks;
    std::uint64_t nextKernelId = 0;
    Addr constBrk = 0;
    Addr globalBrk = 0;
    MitigationConfig mitigationCfg;
    Rng rng{0x6d69746967617465ULL};
    sim::fault::FaultInjector *injector = nullptr;
    metrics::Registry registry;
    sim::trace::Shard *trace = nullptr;
};

} // namespace gpucc::gpu

#endif // GPUCC_GPU_DEVICE_H

/**
 * @file
 * The simulated GPU device: SMs, constant-cache hierarchy, global
 * memory, block scheduler, streams, and the event queue that drives
 * everything.
 */

#ifndef GPUCC_GPU_DEVICE_H
#define GPUCC_GPU_DEVICE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/log.h"
#include "common/metrics/metrics.h"
#include "common/rng.h"
#include "gpu/arch_params.h"
#include "gpu/block_scheduler.h"
#include "gpu/kernel.h"
#include "gpu/mitigations.h"
#include "gpu/sm.h"
#include "gpu/stream.h"
#include "mem/const_memory.h"
#include "mem/global_memory.h"
#include "sim/event_queue.h"
#include "sim/trace/trace.h"

namespace gpucc::sim::fault
{
class FaultInjector;
} // namespace gpucc::sim::fault

namespace gpucc::gpu
{

class ThreadBlock;
class Device;

/**
 * Frozen state of a quiescent device (Device::snapshot()).
 *
 * The payload is immutable and shared: copying a snapshot is two
 * pointer copies, and forking shares the global-memory word store
 * copy-on-write (GlobalMemory unshares on first write). A snapshot
 * stays valid after the source device is destroyed, so a sweep can
 * boot + calibrate one prototype, snapshot it, drop it, and fork a
 * fresh device per cell.
 */
class DeviceSnapshot
{
  public:
    DeviceSnapshot() = default;

    /** @return true once populated by Device::snapshot(). */
    bool valid() const { return payload != nullptr; }

  private:
    friend class Device;
    struct Payload;
    std::shared_ptr<const Payload> payload;
};

/** A simulated GPGPU. */
class Device
{
  public:
    explicit Device(ArchParams arch);
    ~Device();

    Device(const Device &) = delete;
    Device &operator=(const Device &) = delete;

    /** Architecture parameters. */
    const ArchParams &arch() const { return params; }

    /** Event queue / current simulated tick. */
    sim::EventQueue &events() { return queue; }
    Tick now() const { return queue.now(); }

    /** Constant-memory hierarchy. */
    mem::ConstMemory &constMem() { return *cmem; }

    /** Global memory. */
    mem::GlobalMemory &globalMem() { return *gmem; }

    /** SM @p i. */
    Sm &sm(unsigned i);

    /** Number of SMs. */
    unsigned numSms() const { return static_cast<unsigned>(sms.size()); }

    /** Block scheduler. */
    BlockScheduler &blockScheduler() { return *blockSched; }

    /** Create a new stream. */
    Stream &createStream();

    /**
     * Create a kernel instance and submit it to @p stream, arriving at
     * the device at @p arrivalTick. (HostContext is the usual caller.)
     */
    KernelInstance &submit(Stream &stream, KernelLaunch launch,
                           Tick arrivalTick);

    /** Place one block of @p kernel on @p sm (block scheduler only). */
    void placeBlock(KernelInstance &kernel, Sm &sm);

    /** Called by a ThreadBlock when all of its warps completed. */
    void blockFinished(ThreadBlock &block);

    /** Preempt @p block (SMK policy): cancel it, release its SM slice,
     *  and requeue its block id for re-placement. */
    void preemptBlock(ThreadBlock &block);

    /** Blocks currently executing (not finished, not preempted). */
    std::vector<ThreadBlock *> liveBlocks();

    /** Run the event queue dry. */
    void runUntilIdle();

    /**
     * Run until @p kernel completes. Fatal if the queue drains first
     * (the kernel was starved, e.g. blocked by exclusive co-location).
     */
    void runUntilDone(const KernelInstance &kernel);

    /** @return true when @p kernel can never be placed given current
     *  residency (diagnostics for starvation scenarios). */
    bool starved(const KernelInstance &kernel) const;

    /**
     * Bump-allocate constant-space addresses (per application buffer).
     */
    Addr allocConst(std::size_t bytes, std::size_t align = 256);

    /** Bump-allocate global-space addresses. */
    Addr allocGlobal(std::size_t bytes, std::size_t align = 256);

    /** All kernel instances launched so far (diagnostics). */
    const std::vector<std::unique_ptr<KernelInstance>> &kernels() const
    {
        return instances;
    }

    /** Stream @p i in creation order. */
    Stream &stream(unsigned i);

    /** Number of streams created so far. */
    unsigned numStreams() const
    {
        return static_cast<unsigned>(streams.size());
    }

    /** Current constant / global bump-allocator tops (snapshot checks). */
    Addr constAllocTop() const { return constBrk; }
    Addr globalAllocTop() const { return globalBrk; }

    // ---- Snapshot / fork --------------------------------------------
    //
    // snapshot() freezes a *quiescent* device — event queue drained, no
    // resident blocks, no in-flight warp wakeups, streams idle — into an
    // immutable shared payload. fork() builds a brand-new device that
    // is indistinguishable from the original at the snapshot point: the
    // clock, event-queue ordering state (sequence counter and slab free
    // lists, so future pendingEvents() orderings match), cache arrays
    // and LRU clocks, FU-pool timelines, memories (words shared
    // copy-on-write), scheduler cursors, RNG stream, allocator brks and
    // completed-kernel records all carry over. Observability state does
    // NOT: a fork starts with fresh metrics instruments and its own
    // trace shard (attached at construction), so instruments never
    // double-count across forks. verify/digest StateDigest over a fork
    // equals the digest over the source, and stays equal under any
    // identical sequence of future launches.

    /** @return true when the device is at a snapshot-safe quiescent
     *  point (queue drained, no blocks, streams idle). */
    bool quiescent() const;

    /** Capture the full device state. Asserts quiescent(). */
    DeviceSnapshot snapshot() const;

    /** Build a new device identical to @p snap's source at capture. */
    static std::unique_ptr<Device> fork(const DeviceSnapshot &snap);

    /** Cycles between block placement and its warps starting. */
    static constexpr Cycle blockStartCycles = 100;

    /** Active Section 9 mitigations (all off by default). */
    const MitigationConfig &mitigations() const { return mitigationCfg; }

    /** Enable/disable mitigations (before launching kernels). */
    void setMitigations(const MitigationConfig &cfg)
    {
        mitigationCfg = cfg;
        recomputeFastPath();
    }

    // ---- Event-elision fast path ------------------------------------
    //
    // A warp whose next wakeup provably cannot interleave with any
    // pending event just advances the clock and keeps executing inline
    // instead of bouncing through the event queue (WarpCtx::tryElide).
    // The device keeps an exact census of pending *warp wakeups* so the
    // guard can tell "only other-SM warps are pending" (their execution
    // commutes with our SM-local work) apart from everything else.

    /** One warp-resume event entered the queue for SM @p sm. */
    void noteWarpEventScheduled(unsigned sm)
    {
        ++warpUnitsBySm[sm];
        ++warpEntries;
    }

    /** A warp-resume event fired (counted pair of the above). */
    void noteWarpEventFired(unsigned sm)
    {
        GPUCC_ASSERT(warpUnitsBySm[sm] > 0 && warpEntries > 0,
                     "warp event census underflow on sm%u", sm);
        --warpUnitsBySm[sm];
        --warpEntries;
    }

    /** One queue entry will wake @p n warps on SM @p sm (block start). */
    void noteWarpBatchScheduled(unsigned sm, unsigned n)
    {
        warpUnitsBySm[sm] += n;
        ++warpEntries;
    }

    /** The batch entry fired; members are retired one by one below. */
    void noteBatchEntryFired()
    {
        GPUCC_ASSERT(warpEntries > 0, "warp batch census underflow");
        --warpEntries;
    }

    /** @p n warps on SM @p sm wait on an in-flight wakeup (barrier). */
    void noteWarpWaitersAdded(unsigned sm, unsigned n)
    {
        warpUnitsBySm[sm] += n;
    }

    /** One warp of a batch/barrier wakeup is about to resume. */
    void noteWarpUnitResumed(unsigned sm)
    {
        GPUCC_ASSERT(warpUnitsBySm[sm] > 0,
                     "warp unit census underflow on sm%u", sm);
        --warpUnitsBySm[sm];
    }

    /** Drop @p n never-to-fire units (block cancel). */
    void noteWarpUnitsDropped(unsigned sm, unsigned n)
    {
        GPUCC_ASSERT(warpUnitsBySm[sm] >= n,
                     "warp unit census underflow on sm%u", sm);
        warpUnitsBySm[sm] -= n;
    }

    /** A pending event that commutes with everything (block cleanup). */
    void noteNeutralScheduled() { ++neutralEntries; }

    /** Counted pair of the above. */
    void noteNeutralFired()
    {
        GPUCC_ASSERT(neutralEntries > 0, "neutral event census underflow");
        --neutralEntries;
    }

    /**
     * May a warp on SM @p sm advance its *local* clock to @p when and
     * continue executing inline (WarpCtx::tryElide)? Yes when every
     * pending event provably commutes with the warp's SM-local work:
     * warp wakeups of other SMs only touch their own SM's schedulers
     * and L1 (cross-SM ops force a queue re-entry first, see WarpCtx),
     * and neutral events are pure reclamation. Non-commuting events
     * (kernel arrivals, barrier releases, samplers, ...) only permit
     * skips that complete strictly before they fire.
     */
    bool canElideTo(unsigned sm, Tick when)
    {
        if (!fastPathOk || !elisionOn)
            return false;
        // Any pending wakeup on our own SM — queued, or a virtual unit
        // of an in-flight batch/barrier loop — shares our scheduler
        // pools and L1, so its interleaving is observable: never skip.
        if (warpUnitsBySm[sm] != 0)
            return false;
        if (queue.empty())
            return true;
        if (queue.pending() == warpEntries + neutralEntries)
            return true;
        return queue.nextTick() > when;
    }

    /** Kill switch for A/B timing comparisons in tests. */
    void setElisionEnabled(bool on) { elisionOn = on; }

    /** Device-internal RNG (scheduler randomization; timer fuzz uses
     *  a stateless hash stream instead, see MitigationConfig). */
    Rng &deviceRng() { return rng; }

    /**
     * Fault-injection hooks (sim/fault). The injector registers itself
     * on arm() and detaches on destruction; device-side hot paths
     * (clock reads, latency fuzz, warp resumes) query it when present.
     * Null — the default — costs one predictable branch.
     */
    sim::fault::FaultInjector *faultHooks() const { return injector; }

    /** Attach/detach the fault injector (FaultInjector only). */
    void setFaultHooks(sim::fault::FaultInjector *inj)
    {
        injector = inj;
        recomputeFastPath();
    }

    /**
     * Runtime defense policy hook (gpu/mitigations.h), or null — the
     * same attach/detach pattern as faultHooks(). submit() pokes it so
     * a policy whose interval sampling lapsed while the queue drained
     * can re-arm when the next kernel arrives. Not captured by
     * snapshot(): forks start undefended, like they start untraced.
     */
    DefensePolicy *defenseHook() const { return defense; }

    /** Attach/detach the defense policy (ReactiveDefender only). */
    void setDefenseHook(DefensePolicy *p) { defense = p; }

    /**
     * The device's metrics registry. Every component registers its
     * instruments here at construction; collectStats() and the interval
     * snapshots read from it.
     */
    metrics::Registry &metricsRegistry() { return registry; }

    /**
     * Trace shard of this device, or null when tracing is off (the
     * default — same hook pattern as faultHooks()). Hot paths guard
     * with `if (auto *tr = traceShard(); tr && tr->wants(cat))`.
     */
    sim::trace::Shard *traceShard() const { return trace; }

    /**
     * Attach this device to @p session under @p label. Devices attach
     * automatically to the GPUCC_TRACE global session; explicit calls
     * are for tests and sweeps that need deterministic labels.
     */
    void attachTrace(sim::trace::TraceSession &session,
                     const std::string &label);

    /**
     * Sample the metrics registry every @p cycles of simulated time.
     * The sampler rides the event queue and stops rescheduling when the
     * queue otherwise drains, so runUntilIdle() still terminates.
     */
    void sampleMetricsEvery(Cycle cycles);

  private:
    /** Register the device-wide aggregate gauges. */
    void registerDeviceMetrics();

    /**
     * Elision is only valid when nothing observes per-event execution
     * order or draws RNG per operation: fault hooks reorder resumes,
     * trace shards record stall spans, randomized scheduler assignment
     * consumes the device RNG stream, timer fuzz hashes the *device*
     * clock (which an elided warp runs ahead of), and flushes between
     * kernels order against concurrent accesses. Mitigation scenarios
     * are rare and fidelity-critical, so any active mitigation simply
     * runs fully event-driven. Runtime toggles re-enter here via
     * setMitigations(), so an activation edge flips the fast path off
     * for everything scheduled after it.
     */
    void recomputeFastPath()
    {
        fastPathOk = injector == nullptr && trace == nullptr &&
                     !mitigationCfg.any();
    }

    /** Self-rescheduling interval sampler (see sampleMetricsEvery). */
    void scheduleMetricsSample(Tick period);

    ArchParams params;
    sim::EventQueue queue;
    std::unique_ptr<mem::ConstMemory> cmem;
    std::unique_ptr<mem::GlobalMemory> gmem;
    std::vector<std::unique_ptr<Sm>> sms;
    std::unique_ptr<BlockScheduler> blockSched;
    std::vector<std::unique_ptr<Stream>> streams;
    std::vector<std::unique_ptr<KernelInstance>> instances;
    std::vector<std::unique_ptr<ThreadBlock>> blocks;
    std::uint64_t nextKernelId = 0;
    Addr constBrk = 0;
    Addr globalBrk = 0;
    MitigationConfig mitigationCfg;
    Rng rng{0x6d69746967617465ULL};
    sim::fault::FaultInjector *injector = nullptr;
    DefensePolicy *defense = nullptr;
    metrics::Registry registry;
    sim::trace::Shard *trace = nullptr;

    // Pending-event census for the elision fast path (see above).
    std::vector<std::uint32_t> warpUnitsBySm;
    std::uint64_t warpEntries = 0;
    std::uint64_t neutralEntries = 0;
    bool fastPathOk = true;
    bool elisionOn = true;
};

} // namespace gpucc::gpu

#endif // GPUCC_GPU_DEVICE_H

#include "gpu/block_scheduler.h"

#include <algorithm>

#include "common/log.h"
#include "gpu/device.h"
#include "gpu/sm.h"
#include "gpu/thread_block.h"

namespace gpucc::gpu
{

const char *
multiprogPolicyName(MultiprogPolicy p)
{
    switch (p) {
      case MultiprogPolicy::Leftover:
        return "leftover";
      case MultiprogPolicy::SmkPreemptive:
        return "SMK (preemptive)";
      case MultiprogPolicy::IntraSmPartition:
        return "intra-SM partitioning";
      case MultiprogPolicy::InterSmPartition:
        return "inter-SM partitioning";
    }
    return "?";
}

BlockScheduler::BlockScheduler(Device &dev_) : dev(&dev_) {}

void
BlockScheduler::admit(KernelInstance &kernel)
{
    active.push_back(&kernel);
    fill();
}

bool
BlockScheduler::admits(const KernelInstance &k, const Sm &sm) const
{
    switch (policyKind) {
      case MultiprogPolicy::Leftover:
      case MultiprogPolicy::SmkPreemptive:
        return sm.canHost(k.config());
      case MultiprogPolicy::IntraSmPartition:
        return sm.canHostPartitioned(k.config(), k.id());
      case MultiprogPolicy::InterSmPartition: {
        auto it = ranges.find(k.id());
        if (it == ranges.end())
            return false;
        if (sm.id() < it->second.first || sm.id() >= it->second.second)
            return false;
        return sm.canHost(k.config());
      }
    }
    return false;
}

bool
BlockScheduler::placeOne(KernelInstance &k)
{
    unsigned numSms = dev->numSms();
    for (unsigned probe = 0; probe < numSms; ++probe) {
        unsigned smIdx = (rrCursor + probe) % numSms;
        Sm &sm = dev->sm(smIdx);
        if (admits(k, sm)) {
            dev->placeBlock(k, sm);
            rrCursor = (smIdx + 1) % numSms;
            return true;
        }
    }
    return false;
}

bool
BlockScheduler::preemptFor(KernelInstance &k)
{
    // Wang et al.: evict the resident block with the highest resource
    // usage (from another kernel) whose removal lets k's block fit.
    ThreadBlock *victim = nullptr;
    std::uint64_t bestScore = 0;
    for (ThreadBlock *b : dev->liveBlocks()) {
        // Only *previously scheduled* kernels are preemption victims
        // (Wang et al.); this also rules out preemption ping-pong.
        if (b->kernel().id() >= k.id())
            continue;
        const LaunchConfig &vc = b->kernel().config();
        // Would k's block fit on b's SM after removing b?
        Sm &sm = b->sm();
        const SmLimits &lim = dev->arch().limits;
        const SmOccupancy &occ = sm.occupancy();
        const LaunchConfig &kc = k.config();
        bool fits =
            occ.blocks - 1 + 1 <= lim.maxBlocks &&
            occ.threads - vc.threadsPerBlock + kc.threadsPerBlock <=
                lim.maxThreads &&
            occ.warps - vc.warpsPerBlock() + kc.warpsPerBlock() <=
                lim.maxWarps &&
            occ.regs - vc.regsPerThread * vc.threadsPerBlock +
                    kc.regsPerThread * kc.threadsPerBlock <=
                lim.numRegs &&
            occ.smemBytes - vc.smemBytesPerBlock + kc.smemBytesPerBlock <=
                lim.smemBytes;
        if (!fits)
            continue;
        std::uint64_t score = std::uint64_t(vc.threadsPerBlock) +
                              vc.smemBytesPerBlock / 16 +
                              std::uint64_t(vc.regsPerThread) *
                                  vc.threadsPerBlock / 32;
        if (!victim || score > bestScore) {
            victim = b;
            bestScore = score;
        }
    }
    if (!victim)
        return false;
    dev->preemptBlock(*victim);
    ++preemptCount;
    return true;
}

void
BlockScheduler::refreshRanges()
{
    // Free ranges of completed kernels, then hand halves to waiters in
    // launch order.
    std::erase_if(ranges, [this](const auto &kv) {
        for (const auto &inst : dev->kernels()) {
            if (inst->id() == kv.first)
                return inst->done();
        }
        return true;
    });
    unsigned n = dev->numSms();
    unsigned half = n / 2;
    for (KernelInstance *k : active) {
        if (ranges.count(k->id()))
            continue;
        bool loTaken = false, hiTaken = false;
        for (const auto &kv : ranges) {
            if (kv.second.first == 0)
                loTaken = true;
            else
                hiTaken = true;
        }
        if (!loTaken)
            ranges[k->id()] = {0, half};
        else if (!hiTaken)
            ranges[k->id()] = {half, n};
        // else: the kernel waits for a free partition.
    }
}

void
BlockScheduler::noteRequeued(KernelInstance &kernel)
{
    readmits.push_back(&kernel);
}

void
BlockScheduler::fill()
{
    // Merge kernels whose blocks were preempted back into the active
    // list, keeping launch order (kernel ids are monotonic).
    if (!readmits.empty()) {
        for (KernelInstance *k : readmits) {
            if (std::find(active.begin(), active.end(), k) == active.end())
                active.push_back(k);
        }
        readmits.clear();
        std::sort(active.begin(), active.end(),
                  [](const KernelInstance *a, const KernelInstance *b) {
                      return a->id() < b->id();
                  });
    }

    bool temporal = dev->mitigations().temporalPartitioning;
    if (policyKind == MultiprogPolicy::InterSmPartition)
        refreshRanges();

    // Kernels are scanned in launch (admission) order: earlier launches
    // have priority. A kernel whose next block fits nowhere keeps
    // waiting but (leftover/Hyper-Q semantics) does not stop later
    // kernels from using spare capacity.
    for (KernelInstance *k : active) {
        if (temporal) {
            // Section 9 mitigation: one kernel owns the device at a
            // time.
            bool othersResident = false;
            for (const auto &other : dev->kernels()) {
                if (other.get() != k && other->residentBlocks() > 0)
                    othersResident = true;
            }
            if (othersResident)
                break;
        }
        while (!k->fullyPlaced()) {
            if (placeOne(*k))
                continue;
            if (policyKind == MultiprogPolicy::SmkPreemptive &&
                preemptFor(*k) && placeOne(*k)) {
                continue;
            }
            break;
        }
        if (temporal)
            break;
    }
    std::erase_if(active,
                  [](KernelInstance *k) { return k->fullyPlaced(); });
}

void
BlockScheduler::blockRetired()
{
    fill();
}

unsigned
BlockScheduler::pendingKernels() const
{
    return static_cast<unsigned>(active.size());
}

bool
BlockScheduler::couldEverPlace(const KernelInstance &k) const
{
    for (unsigned i = 0; i < dev->numSms(); ++i) {
        const Sm &sm = dev->sm(i);
        switch (policyKind) {
          case MultiprogPolicy::IntraSmPartition:
            if (sm.canHostPartitioned(k.config(), k.id()))
                return true;
            break;
          default:
            // Leftover/SMK/InterSm: placeable whenever the raw SM
            // capacity suffices (partitions/preemption free up later).
            if (sm.canHost(k.config()))
                return true;
            break;
        }
    }
    return false;
}

std::pair<unsigned, unsigned>
BlockScheduler::smRange(std::uint64_t kernelId) const
{
    auto it = ranges.find(kernelId);
    return it == ranges.end() ? std::pair<unsigned, unsigned>{0, 0}
                              : it->second;
}

} // namespace gpucc::gpu

/**
 * @file
 * Hardware thread-block scheduler with selectable multiprogramming
 * policies.
 *
 * The default is the leftover policy the paper reverse engineers on
 * real GPUs (Section 3.1): round-robin block placement, later kernels
 * filling spare capacity, blocks queueing when nothing fits, earlier
 * launches prioritized.
 *
 * Section 3.2 discusses how the attack carries over to multiprogramming
 * schemes proposed in the literature; those schedulers are implemented
 * here as alternative policies:
 *
 *  - SmkPreemptive (Wang et al., simultaneous multikernel): a kernel
 *    whose block fits nowhere preempts the resident block with the
 *    highest resource usage. Co-location becomes trivial (a one-block
 *    channel kernel is never the preemption victim), but other
 *    workloads can share the SM and add noise.
 *  - IntraSmPartition (Xu et al., Warped-Slicer): up to two kernels
 *    share an SM, each capped at a fair share of every resource; no
 *    preemption, so exclusive co-location remains possible.
 *  - InterSmPartition (Adriaens et al. / Tanasic et al.): concurrent
 *    kernels receive disjoint SM sets; intra-SM channels die but the
 *    L2/atomic channels survive.
 */

#ifndef GPUCC_GPU_BLOCK_SCHEDULER_H
#define GPUCC_GPU_BLOCK_SCHEDULER_H

#include <cstdint>
#include <map>
#include <vector>

#include "common/log.h"
#include "common/types.h"
#include "gpu/kernel.h"

namespace gpucc::gpu
{

class Device;
class Sm;
class ThreadBlock;

/** Multiprogramming policy (Sections 3.1-3.2). */
enum class MultiprogPolicy
{
    Leftover,         //!< current GPUs (default)
    SmkPreemptive,    //!< Wang et al., block-level preemption
    IntraSmPartition, //!< Xu et al., fair intra-SM partitioning
    InterSmPartition, //!< Adriaens/Tanasic, disjoint SM sets
};

/** @return printable policy name. */
const char *multiprogPolicyName(MultiprogPolicy p);

/** Device-wide block scheduler. */
class BlockScheduler
{
  public:
    explicit BlockScheduler(Device &dev);

    /** Select the multiprogramming policy (before launching kernels). */
    void setPolicy(MultiprogPolicy p) { policyKind = p; }

    /** Active policy. */
    MultiprogPolicy policy() const { return policyKind; }

    /** Admit a kernel whose stream made it eligible (launch order). */
    void admit(KernelInstance &kernel);

    /** Re-admit a kernel whose block was preempted (SMK policy). */
    void noteRequeued(KernelInstance &kernel);

    /** Place as many pending blocks as the policy allows. */
    void fill();

    /** Notification that a block retired. */
    void blockRetired();

    /** Kernels admitted but not fully placed (tests inspect this). */
    unsigned pendingKernels() const;

    /**
     * Could @p k's blocks ever be placed under the active policy given
     * an otherwise empty device? Used for starvation diagnostics.
     */
    bool couldEverPlace(const KernelInstance &k) const;

    /** Preemptions performed so far (SMK policy statistics). */
    unsigned preemptions() const { return preemptCount; }

    /** SM range assigned to @p kernelId under inter-SM partitioning;
     *  {0,0} when none is assigned yet. */
    std::pair<unsigned, unsigned> smRange(std::uint64_t kernelId) const;

    /**
     * Scheduler state that survives a quiescent point, for device
     * snapshot/fork. The active/readmit kernel lists are transient (a
     * quiescent device has none — snapshot() asserts this), so only the
     * policy, partition assignments, placement cursor and statistics
     * need to cross the fork.
     */
    struct State
    {
        MultiprogPolicy policy = MultiprogPolicy::Leftover;
        std::map<std::uint64_t, std::pair<unsigned, unsigned>> ranges;
        unsigned rrCursor = 0;
        unsigned preemptCount = 0;
    };

    /** Capture state (requires no admitted/readmitted kernels). */
    State
    captureState() const
    {
        GPUCC_ASSERT(active.empty() && readmits.empty(),
                     "block-scheduler snapshot with kernels in flight");
        return State{policyKind, ranges, rrCursor, preemptCount};
    }

    /** Restore state captured from a quiescent scheduler. */
    void
    restoreState(const State &s)
    {
        policyKind = s.policy;
        ranges = s.ranges;
        rrCursor = s.rrCursor;
        preemptCount = s.preemptCount;
    }

  private:
    /** Policy-specific admission test for one block of @p k on @p sm. */
    bool admits(const KernelInstance &k, const Sm &sm) const;

    /** Try to place one block of @p k; @return true on success. */
    bool placeOne(KernelInstance &k);

    /** SMK: preempt the highest-usage victim so @p k's block fits. */
    bool preemptFor(KernelInstance &k);

    /** Inter-SM partitioning: assign/free SM ranges lazily. */
    void refreshRanges();

    Device *dev;
    MultiprogPolicy policyKind = MultiprogPolicy::Leftover;
    std::vector<KernelInstance *> active; //!< launch-ordered
    std::vector<KernelInstance *> readmits; //!< preempted, to re-merge
    std::map<std::uint64_t, std::pair<unsigned, unsigned>> ranges;
    unsigned rrCursor = 0;
    unsigned preemptCount = 0;
};

} // namespace gpucc::gpu

#endif // GPUCC_GPU_BLOCK_SCHEDULER_H

/**
 * @file
 * Per-architecture parameter bundles for the three GPUs the paper
 * evaluates: Tesla C2075 (Fermi), Tesla K40C (Kepler), Quadro M4000
 * (Maxwell). The functional-unit counts reproduce Table 1; latencies
 * and issue occupancies are calibrated so the characterization curves
 * (Figures 6 and 7) and the channel latencies quoted in Sections 4-5
 * match the paper.
 */

#ifndef GPUCC_GPU_ARCH_PARAMS_H
#define GPUCC_GPU_ARCH_PARAMS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "mem/const_memory.h"
#include "mem/global_memory.h"

namespace gpucc::gpu
{

/** GPU microarchitecture generation. */
enum class Generation
{
    Fermi,
    Kepler,
    Maxwell,
};

/** @return human-readable generation name. */
const char *generationName(Generation g);

/** Classes of functional units inside an SM (Table 1 columns). */
enum class FuType
{
    SP,   //!< single-precision CUDA cores
    DPU,  //!< double-precision units
    SFU,  //!< special function units
    LDST, //!< load/store units
};

/** Warp-instruction classes the device programs can issue. */
enum class OpClass
{
    FAdd, //!< single-precision add
    FMul, //!< single-precision multiply
    Sinf, //!< __sinf intrinsic (SFU)
    Sqrt, //!< sqrt (SFU sequence)
    DAdd, //!< double-precision add
    DMul, //!< double-precision multiply
    IAdd, //!< integer ALU op (loop/branch overhead)
};

/** @return printable op-class name. */
const char *opClassName(OpClass op);

/** Timing of one warp instruction of a given class. */
struct OpTiming
{
    FuType fu = FuType::SP;  //!< which unit type executes it
    Cycle latencyCycles = 0; //!< pipeline (result) latency
    Tick occTicks = 0;       //!< per-scheduler issue-port occupancy
    bool supported = true;   //!< e.g. DP is absent on the M4000
};

/** Host-side (driver/runtime) timing parameters. */
struct HostParams
{
    double launchOverheadUs = 4.0; //!< host CPU time per launch call
    double launchLatencyUs = 6.0;  //!< launch-to-first-block latency
    double syncOverheadUs = 3.0;   //!< stream/device synchronize cost
    double launchJitterUs = 1.5;   //!< +/- uniform jitter on launches
};

/** Per-SM occupancy limits used by the leftover block scheduler. */
struct SmLimits
{
    unsigned maxThreads = 2048;
    unsigned maxBlocks = 16;
    unsigned maxWarps = 64;
    std::uint32_t numRegs = 65536;
    std::size_t smemBytes = 48 * 1024;        //!< per SM
    std::size_t smemPerBlockBytes = 48 * 1024; //!< per block cap
};

/** Complete description of one modeled GPU. */
struct ArchParams
{
    std::string name;      //!< e.g. "Tesla K40C"
    Generation generation = Generation::Kepler;
    unsigned numSms = 15;
    double clockGHz = 0.745; //!< core clock used by clock()

    unsigned schedulersPerSm = 4;
    unsigned dispatchUnitsPerScheduler = 2;

    // Table 1 (per SM).
    unsigned spUnits = 192;
    unsigned dpUnits = 64;
    unsigned sfuUnits = 32;
    unsigned ldstUnits = 32;

    SmLimits limits;
    mem::ConstMemoryParams constMem;
    mem::GlobalMemoryParams gmem;
    HostParams host;

    /** Shared-memory banks per SM (bank conflicts serialize lanes). */
    unsigned smemBanks = 32;
    /** Conflict-free shared-memory access latency. */
    Cycle smemBaseCycles = 24;
    /** Extra cycles per additional lane hitting the same bank. */
    Cycle smemConflictCycles = 22;

    /** Reading clock() costs this many cycles. */
    Cycle clockReadCycles = 4;
    /** clock() values are quantized to this granularity (paper: timing
     *  short segments is unreliable). */
    Cycle clockQuantumCycles = 4;

    std::map<OpClass, OpTiming> ops;

    /** Timing for @p op; fatal if the class is not supported. */
    const OpTiming &timing(OpClass op) const;

    /** @return true when the architecture executes @p op. */
    bool supports(OpClass op) const;

    /** Core cycles per second. */
    double cyclesPerSecond() const { return clockGHz * 1e9; }

    /** Convert a tick count to wall-clock seconds on this device. */
    double
    secondsFromTicks(Tick t) const
    {
        return ticksToCyclesF(t) / cyclesPerSecond();
    }

    /** Convert microseconds to ticks on this device. */
    Tick
    ticksFromUs(double us) const
    {
        return cyclesToTicks(us * 1e-6 * cyclesPerSecond());
    }

    /** Units of @p fu per SM (Table 1). */
    unsigned fuCount(FuType fu) const;
};

/**
 * Occupancy (ticks) of a full-warp instruction on a per-scheduler issue
 * port that fronts @p unitsPerScheduler units, optionally @p scale-d
 * for multi-pass sequences. The presets below and the randomized
 * architecture generator (verify/arch_gen) derive every OpTiming
 * occupancy through this one formula, so generated archs contend the
 * same way the calibrated ones do.
 */
Tick warpIssueOccTicks(double unitsPerScheduler, double scale = 1.0);

/** Tesla C2075 preset (Fermi, 14 SMs, 2 schedulers/SM). */
ArchParams fermiC2075();

/** Tesla K40C preset (Kepler, 15 SMs, 4 schedulers/SM). */
ArchParams keplerK40c();

/** Quadro M4000 preset (Maxwell, 13 SMs, 4 quadrants/SM, no DPU). */
ArchParams maxwellM4000();

/** All three presets in the paper's order (Fermi, Kepler, Maxwell). */
std::vector<ArchParams> allArchitectures();

} // namespace gpucc::gpu

#endif // GPUCC_GPU_ARCH_PARAMS_H

/**
 * @file
 * Device introspection: aggregate utilization and cache statistics for
 * analysis and the utilization bench. The same counters a profiler
 * (or a defender, Section 9) would watch.
 */

#ifndef GPUCC_GPU_DEVICE_STATS_H
#define GPUCC_GPU_DEVICE_STATS_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace gpucc::gpu
{

class Device;

/** Utilization of one issue-port class aggregated over the device. */
struct PortUtilization
{
    std::string name;          //!< e.g. "SFU issue"
    Tick busyTicks = 0;        //!< server-ticks consumed
    std::uint64_t requests = 0; //!< instructions issued
    Tick queueingTicks = 0;    //!< total queueing delay
    double utilization = 0.0;  //!< busy / (servers * elapsed)
};

/** Cache hit statistics of one level. */
struct CacheStats
{
    std::string name;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    double
    hitRate() const
    {
        std::uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) / total : 0.0;
    }
};

/** Snapshot of device activity since construction. */
struct DeviceStatsReport
{
    Tick elapsedTicks = 0;
    std::uint64_t eventsExecuted = 0;
    std::uint64_t kernelsLaunched = 0;
    std::uint64_t kernelsCompleted = 0;
    unsigned preemptions = 0;
    std::vector<PortUtilization> ports;
    std::vector<CacheStats> caches;
    Tick atomicBusyTicks = 0;

    /** Render as an aligned text table. */
    std::string render() const;
};

/** Collect a statistics snapshot from @p dev. */
DeviceStatsReport collectStats(Device &dev);

} // namespace gpucc::gpu

#endif // GPUCC_GPU_DEVICE_STATS_H

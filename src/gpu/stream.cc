#include "gpu/stream.h"

#include "common/log.h"
#include "gpu/device.h"

namespace gpucc::gpu
{

Stream::Stream(Device &dev_, unsigned id) : dev(&dev_), streamId(id) {}

void
Stream::submit(KernelInstance &kernel, Tick arrivalTick)
{
    kernel.setArrivalTick(arrivalTick);
    KernelInstance *k = &kernel;
    Stream *self = this;
    dev->events().schedule(arrivalTick, [self, k] {
        self->waiting.push_back(k);
        if (!self->running)
            self->dispatchHead();
    });
}

void
Stream::dispatchHead()
{
    GPUCC_ASSERT(!running, "stream %u already has a running kernel",
                 streamId);
    if (waiting.empty())
        return;
    running = waiting.front();
    waiting.pop_front();
    dev->blockScheduler().admit(*running);
}

void
Stream::kernelDone(KernelInstance &kernel)
{
    GPUCC_ASSERT(running == &kernel, "stream %u: out-of-order completion",
                 streamId);
    running = nullptr;
    dispatchHead();
}

} // namespace gpucc::gpu

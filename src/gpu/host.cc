#include "gpu/host.h"

#include <algorithm>

#include "common/log.h"

namespace gpucc::gpu
{

HostContext::HostContext(Device &dev_, std::uint64_t seed)
    : dev(&dev_), rng(seed), jitterUs(dev_.arch().host.launchJitterUs)
{
}

KernelInstance &
HostContext::launch(Stream &stream, KernelLaunch launch)
{
    const HostParams &h = dev->arch().host;
    hostTick = std::max(hostTick, dev->now());
    hostTick += dev->arch().ticksFromUs(h.launchOverheadUs);

    double jitter = jitterUs > 0.0 ? rng.uniformReal(-jitterUs, jitterUs)
                                   : 0.0;
    double latencyUs = std::max(0.5, h.launchLatencyUs + jitter);
    Tick arrival = std::max(dev->now(),
                            hostTick + dev->arch().ticksFromUs(latencyUs));
    return dev->submit(stream, std::move(launch), arrival);
}

void
HostContext::sync(const KernelInstance &kernel)
{
    dev->runUntilDone(kernel);
    const HostParams &h = dev->arch().host;
    hostTick = std::max(hostTick, kernel.endTick()) +
               dev->arch().ticksFromUs(h.syncOverheadUs);
}

void
HostContext::syncAll()
{
    dev->runUntilIdle();
    const HostParams &h = dev->arch().host;
    hostTick = std::max(hostTick, dev->now()) +
               dev->arch().ticksFromUs(h.syncOverheadUs);
}

void
HostContext::advanceUs(double us)
{
    hostTick += dev->arch().ticksFromUs(us);
}

void
HostContext::catchUpToDevice()
{
    hostTick = std::max(hostTick, dev->now());
}

void
HostContext::catchUpTo(Tick tick)
{
    hostTick = std::max(hostTick, tick);
}

} // namespace gpucc::gpu

#include "gpu/warp.h"

#include "common/log.h"
#include "gpu/device.h"
#include "gpu/sm.h"
#include "gpu/thread_block.h"

namespace gpucc::gpu
{

Warp::Warp(ThreadBlock &block, unsigned warpInBlock, unsigned schedulerId)
    : parent(&block), warpIdx(warpInBlock), schedId(schedulerId),
      ctx(block.sm().device(), block.sm(), block, *this)
{
}

Warp::~Warp() = default;

void
Warp::bindBody()
{
    GPUCC_ASSERT(!program.valid(), "warp body already bound");
    program = parent->kernel().body()(ctx);
    GPUCC_ASSERT(program.valid(), "kernel body returned empty coroutine");
}

void
Warp::resumeNow()
{
    GPUCC_ASSERT(program.valid(), "warp has no body");
    resumeHandle(program.handle());
}

void
Warp::resumeFromEvent(std::coroutine_handle<> h)
{
    ctx.device().noteWarpEventFired(ctx.smid());
    clearRanAhead();
    resumeHandle(h);
}

void
Warp::resumeHandle(std::coroutine_handle<> h)
{
    if (cancelledFlag)
        return; // preempted: the frame stays suspended forever
    GPUCC_ASSERT(program.valid() && !program.done(),
                 "resuming a finished warp");
    state = WarpState::Running;
    h.resume();
    // Nested completions symmetric-transfer back up before resume()
    // returns, so the top-level done() flag is accurate here.
    if (program.done()) {
        state = WarpState::Finished;
        parent->warpFinished(*this);
    }
}

} // namespace gpucc::gpu

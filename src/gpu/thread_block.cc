#include "gpu/thread_block.h"

#include "common/log.h"
#include "gpu/device.h"
#include "gpu/sm.h"
#include "gpu/warp.h"

namespace gpucc::gpu
{

namespace
{
/** Cycles a barrier release costs after the last warp arrives. */
constexpr Cycle barrierCycles = 24;
}

ThreadBlock::ThreadBlock(KernelInstance &kernel, unsigned blockId_, Sm &sm)
    : kernelInst(&kernel), blockId(blockId_), hostSm(&sm)
{
    recordIdx = kernel.blockRecords().size();
    kernel.blockRecords().push_back(
        BlockRecord{blockId_, sm.id(), 0, 0});
    smem.resize(kernel.config().smemBytesPerBlock / 4, 0);
}

void
ThreadBlock::smemWrite(Addr offset, std::uint32_t value)
{
    GPUCC_ASSERT(offset / 4 < smem.size(),
                 "smem offset %llu outside the block's %zu-byte "
                 "allocation",
                 static_cast<unsigned long long>(offset), smem.size() * 4);
    smem[offset / 4] = value;
}

std::uint32_t
ThreadBlock::smemRead(Addr offset) const
{
    GPUCC_ASSERT(offset / 4 < smem.size(),
                 "smem offset %llu outside the block's %zu-byte "
                 "allocation",
                 static_cast<unsigned long long>(offset), smem.size() * 4);
    return smem[offset / 4];
}

ThreadBlock::~ThreadBlock() = default;

void
ThreadBlock::start(Tick startTick)
{
    unsigned n = kernelInst->config().warpsPerBlock();
    warps.reserve(n);
    for (unsigned w = 0; w < n; ++w) {
        // Round-robin warp -> warp-scheduler assignment, continuing
        // across resident blocks on this SM (Section 3.1).
        warps.push_back(
            std::make_unique<Warp>(*this, w, hostSm->takeSchedulerSlot()));
        warps.back()->bindBody();
        // A preempted-and-restarted block re-runs from scratch: discard
        // any output its previous incarnation produced.
        kernelInst
            ->out(blockId * kernelInst->config().warpsPerBlock() + w)
            .clear();
    }
    kernelInst->blockRecords()[recordIdx].startTick = startTick;
    kernelInst->noteStart(startTick);
    Device &dev = hostSm->device();
    for (auto &w : warps) {
        Warp *wp = w.get();
        dev.events().schedule(startTick, [wp] { wp->resumeNow(); });
    }
}

void
ThreadBlock::warpFinished(Warp &)
{
    ++warpsDone;
    GPUCC_ASSERT(warpsDone <= warps.size(), "too many finished warps");
    if (warpsDone == warps.size()) {
        Device &dev = hostSm->device();
        kernelInst->blockRecords()[recordIdx].endTick = dev.now();
        dev.blockFinished(*this);
    }
}

void
ThreadBlock::arriveBarrier(Warp &warp, std::coroutine_handle<> h)
{
    barrierWaiters.emplace_back(&warp, h);
    GPUCC_ASSERT(barrierWaiters.size() <= warps.size() - warpsDone,
                 "barrier overflow in block %u of %s", blockId,
                 kernelInst->name().c_str());
    // A barrier releases when every still-running warp arrived. Warps
    // that already returned no longer participate (CUDA forbids
    // divergent exits around __syncthreads(); our kernels honor that).
    if (barrierWaiters.size() == warps.size() - warpsDone) {
        Device &dev = hostSm->device();
        Tick release = dev.now() + cyclesToTicks(barrierCycles);
        auto woken = std::move(barrierWaiters);
        barrierWaiters.clear();
        for (auto [w, wh] : woken) {
            dev.events().schedule(release,
                                  [w, wh] { w->resumeHandle(wh); });
        }
    }
}

void
ThreadBlock::cancel(Tick when)
{
    GPUCC_ASSERT(!cancelledFlag, "block %u cancelled twice", blockId);
    cancelledFlag = true;
    for (auto &w : warps) {
        if (!w->finished())
            w->cancel();
    }
    barrierWaiters.clear();
    kernelInst->blockRecords()[recordIdx].endTick = when;
}

unsigned
ThreadBlock::numWarps() const
{
    return static_cast<unsigned>(warps.size());
}

bool
ThreadBlock::done() const
{
    return warpsDone == warps.size() && !warps.empty();
}

} // namespace gpucc::gpu

#include "gpu/thread_block.h"

#include <algorithm>

#include "common/log.h"
#include "gpu/device.h"
#include "gpu/sm.h"
#include "gpu/warp.h"

namespace gpucc::gpu
{

namespace
{
/** Cycles a barrier release costs after the last warp arrives. */
constexpr Cycle barrierCycles = 24;
}

ThreadBlock::ThreadBlock(KernelInstance &kernel, unsigned blockId_, Sm &sm)
    : kernelInst(&kernel), blockId(blockId_), hostSm(&sm)
{
    recordIdx = kernel.blockRecords().size();
    kernel.blockRecords().push_back(
        BlockRecord{blockId_, sm.id(), 0, 0});
    smem.resize(kernel.config().smemBytesPerBlock / 4, 0);
}

void
ThreadBlock::smemWrite(Addr offset, std::uint32_t value)
{
    GPUCC_ASSERT(offset / 4 < smem.size(),
                 "smem offset %llu outside the block's %zu-byte "
                 "allocation",
                 static_cast<unsigned long long>(offset), smem.size() * 4);
    smem[offset / 4] = value;
}

std::uint32_t
ThreadBlock::smemRead(Addr offset) const
{
    GPUCC_ASSERT(offset / 4 < smem.size(),
                 "smem offset %llu outside the block's %zu-byte "
                 "allocation",
                 static_cast<unsigned long long>(offset), smem.size() * 4);
    return smem[offset / 4];
}

ThreadBlock::~ThreadBlock() = default;

void
ThreadBlock::start(Tick startTick)
{
    unsigned n = kernelInst->config().warpsPerBlock();
    warps.reserve(n);
    for (unsigned w = 0; w < n; ++w) {
        // Round-robin warp -> warp-scheduler assignment, continuing
        // across resident blocks on this SM (Section 3.1).
        warps.push_back(
            std::make_unique<Warp>(*this, w, hostSm->takeSchedulerSlot()));
        warps.back()->bindBody();
        // A preempted-and-restarted block re-runs from scratch: discard
        // any output its previous incarnation produced.
        kernelInst
            ->out(blockId * kernelInst->config().warpsPerBlock() + w)
            .clear();
    }
    kernelInst->blockRecords()[recordIdx].startTick = startTick;
    kernelInst->noteStart(startTick);
    Device &dev = hostSm->device();
    // One dispatch wakes every warp of the block, in warp order — the
    // same order N per-warp events would fire. Warps finishing
    // synchronously are safe: block teardown is itself a deferred
    // event, so `warps` cannot be destroyed mid-loop. The batch counts
    // as n pending wakeups in the elision census; members retire one by
    // one so a warp resumed early still sees its unstarted siblings.
    dev.noteWarpBatchScheduled(hostSm->id(), n);
    dev.events().schedule(startTick, [this] {
        Device &d = hostSm->device();
        d.noteBatchEntryFired();
        for (auto &w : warps) {
            d.noteWarpUnitResumed(hostSm->id());
            w->resumeNow();
        }
    });
}

void
ThreadBlock::warpFinished(Warp &warp)
{
    ++warpsDone;
    GPUCC_ASSERT(warpsDone <= warps.size(), "too many finished warps");
    lastFinishTick = std::max(lastFinishTick, warp.context().effNow());
    if (warpsDone == warps.size()) {
        Device &dev = hostSm->device();
        kernelInst->blockRecords()[recordIdx].endTick = lastFinishTick;
        if (lastFinishTick <= dev.now()) {
            dev.blockFinished(*this);
            return;
        }
        // A ran-ahead warp finished logically in the future: retire the
        // block when the global clock gets there, so occupancy release,
        // follow-up placement, and stream completion happen at the
        // correct time. With no blocks waiting for placement, retirement
        // only touches this SM (plus same-tick stream bookkeeping that
        // executes inline at the right tick once the event fires), so
        // the event counts as an own-SM warp wakeup and other SMs keep
        // eliding past it; otherwise it is an ordinary ordering event
        // that fences elision, since it may place blocks anywhere.
        const bool counted = dev.blockScheduler().pendingKernels() == 0;
        if (counted)
            dev.noteWarpEventScheduled(hostSm->id());
        dev.events().schedule(lastFinishTick, [this, counted] {
            Device &d = hostSm->device();
            if (counted)
                d.noteWarpEventFired(hostSm->id());
            d.blockFinished(*this);
        });
    }
}

void
ThreadBlock::arriveBarrier(Warp &warp, std::coroutine_handle<> h,
                           Tick arrival)
{
    barrierWaiters.emplace_back(&warp, h);
    barrierArriveTick = std::max(barrierArriveTick, arrival);
    GPUCC_ASSERT(barrierWaiters.size() <= warps.size() - warpsDone,
                 "barrier overflow in block %u of %s", blockId,
                 kernelInst->name().c_str());
    // A barrier releases when every still-running warp arrived. Warps
    // that already returned no longer participate (CUDA forbids
    // divergent exits around __syncthreads(); our kernels honor that).
    if (barrierWaiters.size() == warps.size() - warpsDone) {
        Device &dev = hostSm->device();
        Tick release = barrierArriveTick + cyclesToTicks(barrierCycles);
        barrierArriveTick = 0;
        GPUCC_ASSERT(pendingRelease.empty(),
                     "overlapping barrier releases in block %u", blockId);
        pendingRelease = std::move(barrierWaiters);
        barrierWaiters.clear();
        dev.noteWarpWaitersAdded(
            hostSm->id(), static_cast<unsigned>(pendingRelease.size()));
        // Batched release: one dispatch resumes every waiter in arrival
        // order. The move below keeps the loop safe if the last resumed
        // warp completes the *next* barrier while we are still here.
        dev.events().schedule(release, [this] {
            auto woken = std::move(pendingRelease);
            pendingRelease.clear();
            Device &d = hostSm->device();
            for (auto [w, wh] : woken) {
                d.noteWarpUnitResumed(hostSm->id());
                w->clearRanAhead();
                w->resumeHandle(wh);
            }
        });
    }
}

void
ThreadBlock::cancel(Tick when)
{
    GPUCC_ASSERT(!cancelledFlag, "block %u cancelled twice", blockId);
    cancelledFlag = true;
    for (auto &w : warps) {
        if (!w->finished())
            w->cancel();
    }
    barrierWaiters.clear();
    barrierArriveTick = 0;
    if (!pendingRelease.empty()) {
        // The release event still fires but will wake nobody; retire
        // its census units here so the count stays exact.
        hostSm->device().noteWarpUnitsDropped(
            hostSm->id(), static_cast<unsigned>(pendingRelease.size()));
        pendingRelease.clear();
    }
    kernelInst->blockRecords()[recordIdx].endTick = when;
}

unsigned
ThreadBlock::numWarps() const
{
    return static_cast<unsigned>(warps.size());
}

bool
ThreadBlock::done() const
{
    return warpsDone == warps.size() && !warps.empty();
}

} // namespace gpucc::gpu

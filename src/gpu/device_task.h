/**
 * @file
 * Nested device coroutines.
 *
 * A DeviceTask<T> is a coroutine a warp program can co_await, used to
 * factor protocol building blocks (prime a set, poll for a signal) out
 * of kernel bodies. Completion hands control back to the awaiting
 * coroutine via symmetric transfer, so the warp-level suspend/resume
 * machinery in WarpCtx works unchanged: whichever leaf coroutine
 * suspends is the handle that gets resumed by the event queue.
 */

#ifndef GPUCC_GPU_DEVICE_TASK_H
#define GPUCC_GPU_DEVICE_TASK_H

#include <coroutine>
#include <exception>
#include <utility>

#include "sim/frame_arena.h"

namespace gpucc::gpu
{

/** Awaitable nested coroutine returning T (may be void). */
template <typename T>
class DeviceTask
{
  public:
    struct promise_type
    {
        T value{};
        std::coroutine_handle<> continuation;

        static void *
        operator new(std::size_t n)
        {
            return sim::FrameArena::allocate(n);
        }

        static void
        operator delete(void *p) noexcept
        {
            sim::FrameArena::deallocate(p);
        }

        DeviceTask
        get_return_object()
        {
            return DeviceTask(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() const noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(
                std::coroutine_handle<promise_type> h) const noexcept
            {
                auto cont = h.promise().continuation;
                return cont ? cont : std::noop_coroutine();
            }

            void await_resume() const noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_value(T v) { value = std::move(v); }
        void unhandled_exception() { std::terminate(); }
    };

    using Handle = std::coroutine_handle<promise_type>;

    explicit DeviceTask(Handle h) : coro(h) {}
    DeviceTask(const DeviceTask &) = delete;
    DeviceTask &operator=(const DeviceTask &) = delete;

    DeviceTask(DeviceTask &&other) noexcept
        : coro(std::exchange(other.coro, nullptr))
    {
    }

    ~DeviceTask()
    {
        if (coro)
            coro.destroy();
    }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        coro.promise().continuation = cont;
        return coro; // symmetric transfer into the nested body
    }

    T await_resume() { return std::move(coro.promise().value); }

  private:
    Handle coro;
};

/** Void specialization. */
template <>
class DeviceTask<void>
{
  public:
    struct promise_type
    {
        std::coroutine_handle<> continuation;

        static void *
        operator new(std::size_t n)
        {
            return sim::FrameArena::allocate(n);
        }

        static void
        operator delete(void *p) noexcept
        {
            sim::FrameArena::deallocate(p);
        }

        DeviceTask
        get_return_object()
        {
            return DeviceTask(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() const noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(
                std::coroutine_handle<promise_type> h) const noexcept
            {
                auto cont = h.promise().continuation;
                return cont ? cont : std::noop_coroutine();
            }

            void await_resume() const noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() noexcept {}
        void unhandled_exception() { std::terminate(); }
    };

    using Handle = std::coroutine_handle<promise_type>;

    explicit DeviceTask(Handle h) : coro(h) {}
    DeviceTask(const DeviceTask &) = delete;
    DeviceTask &operator=(const DeviceTask &) = delete;

    DeviceTask(DeviceTask &&other) noexcept
        : coro(std::exchange(other.coro, nullptr))
    {
    }

    ~DeviceTask()
    {
        if (coro)
            coro.destroy();
    }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        coro.promise().continuation = cont;
        return coro;
    }

    void await_resume() const noexcept {}

  private:
    Handle coro;
};

} // namespace gpucc::gpu

#endif // GPUCC_GPU_DEVICE_TASK_H

#include "gpu/device_stats.h"

#include <sstream>

#include "common/table.h"
#include "gpu/device.h"
#include "gpu/warp_scheduler.h"

namespace gpucc::gpu
{

namespace
{

/** Accumulate one pool into a port row. */
void
accumulate(PortUtilization &row, const sim::ResourcePool &pool)
{
    row.busyTicks += pool.busyTicks();
    row.requests += pool.requests();
    row.queueingTicks += pool.totalQueueing();
}

} // namespace

DeviceStatsReport
collectStats(Device &dev)
{
    DeviceStatsReport r;
    r.elapsedTicks = dev.now();
    r.eventsExecuted = dev.events().executed();
    r.kernelsLaunched = dev.kernels().size();
    for (const auto &k : dev.kernels()) {
        if (k->done())
            ++r.kernelsCompleted;
    }
    r.preemptions = dev.blockScheduler().preemptions();

    PortUtilization dispatch{"dispatch", 0, 0, 0, 0.0};
    PortUtilization sp{"SP issue", 0, 0, 0, 0.0};
    PortUtilization dp{"DPU issue", 0, 0, 0, 0.0};
    PortUtilization sfu{"SFU issue", 0, 0, 0, 0.0};
    PortUtilization ldst{"LD/ST issue", 0, 0, 0, 0.0};
    unsigned schedCount = 0;
    for (unsigned s = 0; s < dev.numSms(); ++s) {
        Sm &sm = dev.sm(s);
        for (unsigned i = 0; i < sm.numSchedulers(); ++i) {
            WarpScheduler &ws = sm.scheduler(i);
            accumulate(dispatch, ws.dispatch());
            accumulate(sp, ws.port(FuType::SP));
            accumulate(dp, ws.port(FuType::DPU));
            accumulate(sfu, ws.port(FuType::SFU));
            accumulate(ldst, ws.port(FuType::LDST));
            ++schedCount;
        }
    }
    auto finish = [&](PortUtilization &row, double serversPerScheduler) {
        double capacity = static_cast<double>(r.elapsedTicks) *
                          static_cast<double>(schedCount) *
                          serversPerScheduler;
        row.utilization =
            capacity > 0.0 ? static_cast<double>(row.busyTicks) / capacity
                           : 0.0;
        r.ports.push_back(row);
    };
    finish(dispatch, dev.arch().dispatchUnitsPerScheduler);
    finish(sp, 1.0);
    finish(dp, 1.0);
    finish(sfu, 1.0);
    finish(ldst, 1.0);

    std::uint64_t l1Hits = 0, l1Misses = 0;
    for (unsigned s = 0; s < dev.numSms(); ++s) {
        const auto &l1 = dev.constMem().l1Cache(s);
        l1Hits += l1.hits();
        l1Misses += l1.misses();
    }
    r.caches.push_back(CacheStats{"const L1 (all SMs)", l1Hits, l1Misses});
    r.caches.push_back(CacheStats{"const L2",
                                  dev.constMem().l2Cache().hits(),
                                  dev.constMem().l2Cache().misses()});
    r.atomicBusyTicks = dev.globalMem().atomicBusyTicks();
    return r;
}

std::string
DeviceStatsReport::render() const
{
    std::ostringstream os;
    os << "device time: " << ticksToCycles(elapsedTicks) << " cycles, "
       << eventsExecuted << " events, " << kernelsCompleted << "/"
       << kernelsLaunched << " kernels done";
    if (preemptions)
        os << ", " << preemptions << " preemptions";
    os << "\n";

    Table ports("issue-port activity");
    ports.header({"port", "instructions", "busy cycles", "queueing cycles",
                  "utilization"});
    for (const auto &p : this->ports) {
        ports.row({p.name, std::to_string(p.requests),
                   std::to_string(ticksToCycles(p.busyTicks)),
                   std::to_string(ticksToCycles(p.queueingTicks)),
                   fmtDouble(100.0 * p.utilization, 2) + " %"});
    }
    os << ports.render();

    Table caches("constant caches");
    caches.header({"cache", "hits", "misses", "hit rate"});
    for (const auto &c : this->caches) {
        caches.row({c.name, std::to_string(c.hits),
                    std::to_string(c.misses),
                    fmtDouble(100.0 * c.hitRate(), 1) + " %"});
    }
    os << caches.render();
    return os.str();
}

} // namespace gpucc::gpu

#include "gpu/device_stats.h"

#include <sstream>

#include "common/log.h"
#include "common/metrics/metrics.h"
#include "common/table.h"
#include "gpu/device.h"

namespace gpucc::gpu
{

// collectStats is a *view* over the metrics registry: every number here
// comes from the same instruments the interval snapshots and the JSON
// export read, so a report can never disagree with the time-series.
DeviceStatsReport
collectStats(Device &dev)
{
    const metrics::Registry &reg = dev.metricsRegistry();
    auto u64 = [&reg](const char *name) {
        return static_cast<std::uint64_t>(reg.value(name));
    };

    DeviceStatsReport r;
    r.elapsedTicks = dev.now();
    r.eventsExecuted = u64("sim.events.executed");
    r.kernelsLaunched = u64("kernels.launched");
    r.kernelsCompleted = u64("kernels.completed");
    r.preemptions = static_cast<unsigned>(u64("sched.preemptions"));

    unsigned schedCount = 0;
    for (unsigned s = 0; s < dev.numSms(); ++s)
        schedCount += dev.sm(s).numSchedulers();

    struct PortClass
    {
        const char *key;   //!< registry name segment, e.g. "fu.sp.*"
        const char *label; //!< report row name
        bool dispatch;     //!< servers scale with dispatchUnitsPerScheduler
    };
    static constexpr PortClass classes[] = {
        {"dispatch", "dispatch", true}, {"sp", "SP issue", false},
        {"dpu", "DPU issue", false},    {"sfu", "SFU issue", false},
        {"ldst", "LD/ST issue", false},
    };
    for (const auto &c : classes) {
        PortUtilization row;
        row.name = c.label;
        row.busyTicks = static_cast<Tick>(
            reg.value(strfmt("fu.%s.busyTicks", c.key)));
        row.requests = u64(strfmt("fu.%s.requests", c.key).c_str());
        row.queueingTicks = static_cast<Tick>(
            reg.value(strfmt("fu.%s.queueingTicks", c.key)));
        double servers = c.dispatch
                             ? dev.arch().dispatchUnitsPerScheduler
                             : 1.0;
        double capacity = static_cast<double>(r.elapsedTicks) *
                          static_cast<double>(schedCount) * servers;
        row.utilization =
            capacity > 0.0 ? static_cast<double>(row.busyTicks) / capacity
                           : 0.0;
        r.ports.push_back(std::move(row));
    }

    r.caches.push_back(CacheStats{"const L1 (all SMs)",
                                  u64("cache.constL1.hits"),
                                  u64("cache.constL1.misses")});
    r.caches.push_back(CacheStats{"const L2", u64("cache.constL2.hits"),
                                  u64("cache.constL2.misses")});
    r.atomicBusyTicks = static_cast<Tick>(reg.value("mem.atomic.busyTicks"));
    return r;
}

std::string
DeviceStatsReport::render() const
{
    std::ostringstream os;
    os << "device time: " << ticksToCycles(elapsedTicks) << " cycles, "
       << eventsExecuted << " events, " << kernelsCompleted << "/"
       << kernelsLaunched << " kernels done";
    if (preemptions)
        os << ", " << preemptions << " preemptions";
    os << "\n";

    Table ports("issue-port activity");
    ports.header({"port", "instructions", "busy cycles", "queueing cycles",
                  "utilization"});
    for (const auto &p : this->ports) {
        ports.row({p.name, std::to_string(p.requests),
                   std::to_string(ticksToCycles(p.busyTicks)),
                   std::to_string(ticksToCycles(p.queueingTicks)),
                   fmtDouble(100.0 * p.utilization, 2) + " %"});
    }
    os << ports.render();

    Table caches("constant caches");
    caches.header({"cache", "hits", "misses", "hit rate"});
    for (const auto &c : this->caches) {
        caches.row({c.name, std::to_string(c.hits),
                    std::to_string(c.misses),
                    fmtDouble(100.0 * c.hitRate(), 1) + " %"});
    }
    os << caches.render();
    return os.str();
}

} // namespace gpucc::gpu

/**
 * @file
 * CUDA-style stream: kernels on the same stream execute in order;
 * kernels on different streams run concurrently (the multiprogramming
 * mechanism the paper uses for co-locating trojan and spy).
 */

#ifndef GPUCC_GPU_STREAM_H
#define GPUCC_GPU_STREAM_H

#include <deque>

#include "common/types.h"
#include "gpu/kernel.h"

namespace gpucc::gpu
{

class Device;

/** An in-order kernel queue sharing the device with other streams. */
class Stream
{
  public:
    Stream(Device &dev, unsigned id);

    /** Stream id. */
    unsigned id() const { return streamId; }

    /**
     * Submit @p kernel to arrive at the device at @p arrivalTick (the
     * host launch path). The kernel becomes eligible for block placement
     * once every earlier kernel on this stream completed.
     */
    void submit(KernelInstance &kernel, Tick arrivalTick);

    /** Notification that @p kernel (the running head) completed. */
    void kernelDone(KernelInstance &kernel);

    /** @return true when a kernel from this stream is on the device. */
    bool busy() const { return running != nullptr; }

    /** @return true when nothing is running or queued (snapshot gate). */
    bool idle() const { return running == nullptr && waiting.empty(); }

  private:
    void dispatchHead();

    Device *dev;
    unsigned streamId;
    KernelInstance *running = nullptr;
    std::deque<KernelInstance *> waiting;
};

} // namespace gpucc::gpu

#endif // GPUCC_GPU_STREAM_H

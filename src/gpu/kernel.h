/**
 * @file
 * Kernel launch descriptors and the runtime state of an in-flight
 * kernel (grid) on the device.
 */

#ifndef GPUCC_GPU_KERNEL_H
#define GPUCC_GPU_KERNEL_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "gpu/warp_program.h"

namespace gpucc::gpu
{

class WarpCtx;
class ThreadBlock;
class Stream;

/** Grid/block/resource configuration of a kernel launch. */
struct LaunchConfig
{
    unsigned gridBlocks = 1;
    unsigned threadsPerBlock = 128;
    std::size_t smemBytesPerBlock = 0;
    unsigned regsPerThread = 32;

    /** Warps per block (threads rounded up to full warps). */
    unsigned
    warpsPerBlock() const
    {
        return (threadsPerBlock + warpSize - 1) / warpSize;
    }
};

/** Warp-granularity kernel body. Invoked once per warp. */
using KernelBody = std::function<WarpProgram(WarpCtx &)>;

/** A kernel ready to be launched. */
struct KernelLaunch
{
    std::string name = "kernel";
    LaunchConfig config;
    KernelBody body;
};

/** Where/when one thread block executed (reverse-engineering probes). */
struct BlockRecord
{
    unsigned blockId = 0;
    unsigned smId = 0;
    Tick startTick = 0;
    Tick endTick = 0;
};

/** Runtime state of a launched kernel. */
class KernelInstance
{
  public:
    KernelInstance(std::uint64_t id, KernelLaunch launch, Stream &stream);

    /**
     * Rebuild @p src inside a forked device (snapshot/fork): every
     * record — outputs, block records, timing — is copied verbatim and
     * only the stream reference is re-pointed into the new device.
     * Snapshots are taken at quiescent points, so @p src is a completed
     * kernel and its (possibly channel-owned) body closure is inert
     * history that is never invoked again.
     */
    KernelInstance(const KernelInstance &src, Stream &stream);

    /** Unique launch id (monotonic per device). */
    std::uint64_t id() const { return kernelId; }

    /** Kernel name for diagnostics. */
    const std::string &name() const { return launchDesc.name; }

    /** Launch configuration. */
    const LaunchConfig &config() const { return launchDesc.config; }

    /** Kernel body factory. */
    const KernelBody &body() const { return launchDesc.body; }

    /** Stream the kernel was launched on. */
    Stream &stream() const { return *owningStream; }

    /** @return true when every block has been placed on an SM. */
    bool fullyPlaced() const;

    /** Record placement of the next pending block. @return its id. */
    unsigned notePlaced();

    /** Return block @p blockId to the pending queue (SMK preemption). */
    void requeueBlock(unsigned blockId);

    /** Record completion of one block. */
    void noteBlockDone();

    /** @return true when all blocks have completed. */
    bool done() const { return doneFlag; }

    /** Blocks currently resident on SMs (placed but not finished). */
    unsigned residentBlocks() const;

    /** Blocks awaiting (re-)placement. */
    unsigned pendingBlocks() const
    {
        return static_cast<unsigned>(pending.size());
    }

    /** Tick the kernel became eligible for block placement. */
    Tick arrivalTick() const { return arrival; }
    void setArrivalTick(Tick t) { arrival = t; }

    /** Tick the first block started / the last block finished. */
    Tick startTick() const { return start; }
    Tick endTick() const { return end; }
    void noteStart(Tick t);
    void noteEnd(Tick t) { end = t; }

    /** Per-warp output buffer (global warp index). */
    std::vector<std::uint64_t> &out(unsigned globalWarpIdx);
    const std::vector<std::uint64_t> &out(unsigned globalWarpIdx) const;

    /** Number of warps in the whole grid. */
    unsigned totalWarps() const;

    /** Scheduling record of each block (filled as blocks run). */
    std::vector<BlockRecord> &blockRecords() { return records; }
    const std::vector<BlockRecord> &blockRecords() const { return records; }

  private:
    std::uint64_t kernelId;
    KernelLaunch launchDesc;
    Stream *owningStream;
    std::vector<unsigned> pending; //!< block ids awaiting placement
    unsigned blocksDone = 0;
    bool doneFlag = false;
    bool started = false;
    Tick arrival = 0;
    Tick start = 0;
    Tick end = 0;
    std::vector<std::vector<std::uint64_t>> outputs;
    std::vector<BlockRecord> records;
};

} // namespace gpucc::gpu

#endif // GPUCC_GPU_KERNEL_H

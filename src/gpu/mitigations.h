/**
 * @file
 * Section 9 mitigations, implemented as device-level options.
 *
 * The paper sketches four defense families against GPU covert channels;
 * each is modeled here so its effect on every channel can be measured:
 *
 *  - spatial cache partitioning: the constant caches' ways are split
 *    between applications, so one application's loads can never evict
 *    another's lines (cf. NoMo/Catalyst-style way partitioning);
 *  - scheduler randomization: warps are assigned to warp schedulers
 *    randomly instead of round-robin, destroying the per-scheduler bit
 *    lanes of the parallel SFU channel;
 *  - timer fuzzing: latency observations available to programs are
 *    perturbed (cf. TimeWarp), drowning small contention deltas;
 *  - temporal partitioning: kernels from different applications never
 *    execute concurrently; optionally the caches are flushed between
 *    kernels — without the flush, *state-based* cache channels survive
 *    temporal isolation even though contention channels die.
 */

#ifndef GPUCC_GPU_MITIGATIONS_H
#define GPUCC_GPU_MITIGATIONS_H

#include "common/types.h"

namespace gpucc::gpu
{

/** Device-level mitigation switches (all off by default). */
struct MitigationConfig
{
    /** Split constant-cache ways between even/odd applications. */
    bool cacheWayPartitioning = false;

    /** Assign warps to schedulers randomly instead of round-robin. */
    bool randomizeWarpSchedulers = false;

    /** Amplitude (cycles) of uniform noise added to every latency a
     *  program can observe; 0 disables. */
    Cycle timerFuzzCycles = 0;

    /** Only one application's kernels run on the device at a time. */
    bool temporalPartitioning = false;

    /** Flush the constant caches whenever a kernel completes (only
     *  meaningful combined with temporal partitioning). */
    bool flushCachesBetweenKernels = false;

    /** @return true when any mitigation is enabled. */
    bool
    any() const
    {
        return cacheWayPartitioning || randomizeWarpSchedulers ||
               timerFuzzCycles > 0 || temporalPartitioning ||
               flushCachesBetweenKernels;
    }
};

} // namespace gpucc::gpu

#endif // GPUCC_GPU_MITIGATIONS_H

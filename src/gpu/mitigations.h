/**
 * @file
 * Section 9 mitigations: static device-level switches plus runtime
 * defense policies.
 *
 * The paper sketches four defense families against GPU covert channels;
 * each is modeled here so its effect on every channel can be measured:
 *
 *  - spatial cache partitioning: the constant caches' ways are split
 *    between applications, so one application's loads can never evict
 *    another's lines (cf. NoMo/Catalyst-style way partitioning);
 *  - scheduler randomization: warps are assigned to warp schedulers
 *    randomly instead of round-robin, destroying the per-scheduler bit
 *    lanes of the parallel SFU channel;
 *  - timer fuzzing: latency observations available to programs are
 *    perturbed (cf. TimeWarp), drowning small contention deltas;
 *  - temporal partitioning: kernels from different applications never
 *    execute concurrently; optionally the caches are flushed between
 *    kernels — without the flush, *state-based* cache channels survive
 *    temporal isolation even though contention channels die.
 *
 * Originally these were static switches fixed for the lifetime of a
 * Device. Real deployments (Karimi et al.) activate defenses
 * *reactively*, so every switch is also activatable/deactivatable at
 * runtime through two policy objects that ride the event queue:
 *
 *  - MitigationScheduler: applies a fixed, pre-planned sequence of
 *    MitigationConfig switches at given device times (the defense
 *    analogue of a FaultPlan — deterministic per schedule);
 *  - ReactiveDefender: samples the constant-cache eviction trace on an
 *    interval, scores it with the covert-channel detector, and walks a
 *    defense ladder up on sustained alarms / down after quiet periods.
 *    Deterministic per (config, seed): sample times derive from a
 *    splitmix64 stream, never from wall clock or the device RNG.
 *
 * Activation events are ordinary (non-neutral) queue events, so the
 * warp-local clock-elision fast path (PR 6) cannot skip past them: an
 * elided window always completes strictly before the toggle fires, and
 * setMitigations() re-evaluates fastPathOk for everything after it.
 */

#ifndef GPUCC_GPU_MITIGATIONS_H
#define GPUCC_GPU_MITIGATIONS_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace gpucc::gpu
{

class Device;

/** Device-level mitigation switches (all off by default). */
struct MitigationConfig
{
    /** Split constant-cache ways between even/odd applications. */
    bool cacheWayPartitioning = false;

    /** Assign warps to schedulers randomly instead of round-robin. */
    bool randomizeWarpSchedulers = false;

    /** Amplitude (cycles) of uniform noise added to every latency a
     *  program can observe; 0 disables. */
    Cycle timerFuzzCycles = 0;

    /** Seed of the stateless (splitmix64) timer-fuzz noise stream.
     *  Fuzzed runs replay bit-identically at any GPUCC_THREADS because
     *  the noise is a pure hash of (seed, tick, sm, warp) — the device
     *  RNG is never consumed. Not a mitigation by itself (any()
     *  ignores it). */
    std::uint64_t timerFuzzSeed = 0x74696d6572667aULL; // "timerfz"

    /** Only one application's kernels run on the device at a time. */
    bool temporalPartitioning = false;

    /** Flush the constant caches whenever a kernel completes (only
     *  meaningful combined with temporal partitioning). */
    bool flushCachesBetweenKernels = false;

    /** @return true when any mitigation is enabled. */
    bool
    any() const
    {
        return cacheWayPartitioning || randomizeWarpSchedulers ||
               timerFuzzCycles > 0 || temporalPartitioning ||
               flushCachesBetweenKernels;
    }
};

/**
 * Runtime defense hook installed on a Device (null by default — same
 * hook pattern as faultHooks()). The device pokes it whenever a kernel
 * is submitted so a policy whose sampling lapsed while the event queue
 * drained (between host-synchronized exchanges) can re-arm itself
 * without keeping runUntilIdle() from terminating.
 */
class DefensePolicy
{
  public:
    virtual ~DefensePolicy() = default;

    /** Called from Device::submit() after the launch is enqueued. */
    virtual void noteKernelSubmitted() = 0;
};

/** One rung of a defense ladder: a named mitigation combination. */
struct DefenseRung
{
    std::string name;
    MitigationConfig cfg;
};

/**
 * The canonical escalation ladder (weakest first): timer-fuzz
 * amplitude ramp, then way partitioning, then scheduler randomization,
 * then temporal partitioning + flush. Later rungs keep the earlier
 * switches on — escalation only ever tightens the screws.
 */
std::vector<DefenseRung> defaultDefenseLadder();

/** One step of a pre-planned mitigation schedule. */
struct MitigationStep
{
    Cycle atCycle = 0;     //!< device time (cycles from arm) to apply at
    MitigationConfig cfg;  //!< full config applied at that time
    std::string note;      //!< annotation for traces/logs
};

/** A pre-planned sequence of runtime mitigation switches. */
struct MitigationSchedule
{
    std::vector<MitigationStep> steps;
};

/**
 * Applies a MitigationSchedule on the event queue. Steps fire as
 * regular events at arm-time + step.atCycle in the order given;
 * identical per (schedule, device state) — there is no randomness.
 */
class MitigationScheduler
{
  public:
    MitigationScheduler(Device &dev, MitigationSchedule schedule);

    /** Schedule every step relative to the current device clock.
     *  Call once; the steps then fire as the clock passes them. */
    void arm();

    /** Number of steps whose events have fired so far. */
    unsigned applied() const { return appliedSteps; }

  private:
    Device *dev;
    MitigationSchedule sched;
    unsigned appliedSteps = 0;
};

/** Tunables of the reactive defender. */
struct ReactiveDefenderConfig
{
    /** Nominal gap between detector samples (device cycles). */
    Cycle samplePeriodCycles = 60000;

    /** Seed of the sample-phase jitter stream (splitmix64; the device
     *  RNG is never consumed, so arming a defender cannot perturb any
     *  other random stream). */
    std::uint64_t seed = 1;

    /** Detector knobs (mirrors covert::DetectorConfig — kept as plain
     *  fields so this header stays free of covert/ includes). */
    unsigned minCrossEvictions = 48;
    double oscillationThreshold = 0.55;

    /** Consecutive alarmed samples before escalating one rung. */
    unsigned alarmsToEscalate = 2;

    /** Consecutive quiet samples before de-escalating one rung. */
    unsigned quietToDeescalate = 8;

    /** Hard bound on lifetime samples (keeps every run finite). */
    std::size_t maxSamples = 1 << 14;

    /** Escalation ladder; empty selects defaultDefenseLadder(). */
    std::vector<DefenseRung> ladder;
};

/** Observable state of a ReactiveDefender. */
struct ReactiveDefenderStats
{
    std::uint64_t samples = 0;       //!< detector samples taken
    std::uint64_t alarms = 0;        //!< samples that flagged a channel
    std::uint64_t escalations = 0;   //!< rung steps up
    std::uint64_t deescalations = 0; //!< rung steps down
    int rung = -1;                   //!< current rung (-1 = baseline)
    int peakRung = -1;               //!< highest rung ever reached
};

/**
 * Samples the covert-channel detector on an interval and walks a
 * defense ladder: @ref ReactiveDefenderConfig::alarmsToEscalate
 * consecutive alarms raise the rung, quietToDeescalate consecutive
 * quiet samples lower it (rung -1 restores the baseline config the
 * device had at arm()).
 *
 * While armed the defender owns the constant-memory eviction trace: it
 * enables tracing, and each sample analyzes then clears the trace (so
 * memory stays bounded and each sample scores only fresh evictions).
 *
 * Sampling rides the event queue with the same re-arm discipline as
 * the metrics sampler: a sample only reschedules itself while the
 * queue has other work, and the Device::submit() hook revives it when
 * the next kernel arrives — runUntilIdle() always terminates.
 */
class ReactiveDefender : public DefensePolicy
{
  public:
    ReactiveDefender(Device &dev, ReactiveDefenderConfig cfg);

    /** Install the hook, enable eviction tracing, start sampling. */
    void arm();

    /** Remove the hook and stop sampling. Leaves whatever mitigation
     *  config is active in place (callers can setMitigations() to
     *  reset); disables eviction tracing. */
    void disarm();

    void noteKernelSubmitted() override;

    const ReactiveDefenderStats &stats() const { return st; }
    const std::vector<DefenseRung> &ladder() const { return rungs; }
    bool armed() const { return isArmed; }

  private:
    void scheduleSample();
    void onSample();
    Tick nextSampleDelay();
    void applyRung(int r);

    Device *dev;
    ReactiveDefenderConfig cfg;
    ReactiveDefenderStats st;
    std::vector<DefenseRung> rungs;
    MitigationConfig baseline;
    unsigned alarmStreak = 0;
    unsigned quietStreak = 0;
    bool isArmed = false;
    bool samplePending = false; //!< a sample event sits in the queue
};

} // namespace gpucc::gpu

#endif // GPUCC_GPU_MITIGATIONS_H

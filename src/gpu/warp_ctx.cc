#include "gpu/warp_ctx.h"

#include <algorithm>

#include "common/log.h"
#include "gpu/device.h"
#include "gpu/sm.h"
#include "gpu/stream.h"
#include "gpu/thread_block.h"
#include "gpu/warp.h"
#include "sim/exec/sweep_runner.h"
#include "sim/fault/fault_injector.h"

namespace gpucc::gpu
{

WarpCtx::WarpCtx(Device &dev_, Sm &sm_, ThreadBlock &block_, Warp &warp_)
    : dev(&dev_), smPtr(&sm_), blockPtr(&block_), warpPtr(&warp_)
{
}

bool
WarpCtx::Await::await_ready() const noexcept
{
    // SM-local operations already executed eagerly (their reservations
    // only touch this SM's scheduler pools), so the only question is
    // whether the wait until `when` can skip the queue.
    return ctx->tryElide(when);
}

void
WarpCtx::Await::await_suspend(std::coroutine_handle<> h) const
{
    ctx->scheduleResume(h, when);
}

bool
WarpCtx::LoadAwait::await_ready() noexcept
{
    // A ran-ahead warp may only keep executing inline while it stays on
    // its own SM. A probe-verified L1 hit qualifies; anything that
    // would forward to the shared L2 first re-enters the queue so
    // cross-SM state still mutates in global FIFO order.
    if (ctx->mustYieldCrossSm() && !ctx->probeL1Hit(addr))
        return false;
    compute();
    return ctx->tryElide(when);
}

void
WarpCtx::LoadAwait::await_suspend(std::coroutine_handle<> h) noexcept
{
    if (!computed) {
        ctx->scheduleReentry(this, h);
        return;
    }
    ctx->scheduleResume(h, when);
}

bool
WarpCtx::GmemAwait::await_ready() noexcept
{
    // Global memory is always cross-SM: a ran-ahead warp yields first.
    if (ctx->mustYieldCrossSm())
        return false;
    compute();
    return ctx->tryElide(when);
}

void
WarpCtx::GmemAwait::await_suspend(std::coroutine_handle<> h) noexcept
{
    if (!computed) {
        ctx->scheduleReentry(this, h);
        return;
    }
    ctx->scheduleResume(h, when);
}

void
WarpCtx::BarrierAwait::await_suspend(std::coroutine_handle<> h) const
{
    ctx->enterBarrier(h);
}

void
WarpCtx::scheduleResume(std::coroutine_handle<> h, Tick when) const
{
    // An active warp-stall fault freezes this application's resumes
    // until its window closes (one-sided preemption).
    if (auto *inj = dev->faultHooks()) {
        unsigned stream =
            static_cast<unsigned>(blockPtr->kernel().stream().id());
        when += inj->resumeDelayAt(stream, when);
    }
    if (auto *tr = dev->traceShard();
        tr && tr->wants(sim::trace::Cat::Warp)) {
        Tick now = dev->now();
        if (when > now) {
            std::uint32_t tid = 1000 + smPtr->id();
            tr->nameRow(tid, strfmt("sm%u warp stalls", smPtr->id()));
            tr->span(sim::trace::Cat::Warp, tid, "stall", now, when,
                     "warp", globalWarpId());
        }
    }
    Warp *w = warpPtr;
    dev->noteWarpEventScheduled(smPtr->id());
    dev->events().schedule(when, [w, h] { w->resumeFromEvent(h); });
}

Tick
WarpCtx::effNow() const
{
    return std::max(dev->now(), aheadTick);
}

bool
WarpCtx::tryElide(Tick when)
{
    if (!dev->canElideTo(smPtr->id(), when))
        return false;
    aheadTick = when;
    warpPtr->setRanAhead();
    return true;
}

bool
WarpCtx::mustYieldCrossSm() const
{
    if (!warpPtr->ranAhead())
        return false;
    const sim::EventQueue &q = dev->events();
    return !q.empty() && q.nextTick() <= effNow();
}

bool
WarpCtx::probeL1Hit(Addr addr) const
{
    return dev->constMem().l1Cache(smPtr->id()).probe(addr);
}

/**
 * Shared tail of the two reentry overloads: count the event as a warp
 * wakeup, and on fire restore FIFO position (clear ran-ahead), run the
 * deferred computation, then either elide onward or suspend normally.
 */
template <class AwaitT>
void
WarpCtx::reentryImpl(AwaitT *aw, std::coroutine_handle<> h)
{
    dev->noteWarpEventScheduled(smPtr->id());
    dev->events().schedule(effNow(), [aw, h] {
        WarpCtx *c = aw->ctx;
        c->dev->noteWarpEventFired(c->smPtr->id());
        c->warpPtr->clearRanAhead();
        aw->compute();
        if (c->tryElide(aw->when)) {
            c->warpPtr->resumeHandle(h);
            return;
        }
        c->scheduleResume(h, aw->when);
    });
}

void
WarpCtx::scheduleReentry(LoadAwait *aw, std::coroutine_handle<> h)
{
    reentryImpl(aw, h);
}

void
WarpCtx::scheduleReentry(GmemAwait *aw, std::coroutine_handle<> h)
{
    reentryImpl(aw, h);
}

void
WarpCtx::enterBarrier(std::coroutine_handle<> h) const
{
    warpPtr->parkInBarrier();
    blockPtr->arriveBarrier(*warpPtr, h, effNow());
}

Tick
WarpCtx::issueDispatch(Tick now) const
{
    auto &sched = smPtr->scheduler(warpPtr->schedulerId());
    auto r = sched.dispatch().acquire(now, cyclesToTicks(Cycle(1)));
    return r.serviceStart;
}

std::uint64_t
WarpCtx::fuzzLatency(std::uint64_t cycles) const
{
    std::int64_t noise = 0;
    // Section 9 mitigation (TimeWarp-style): every latency a program
    // observes carries uniform noise, drowning small contention deltas.
    // Like the fault-injected jitter below, the noise is a stateless
    // hash of (seed, tick, warp) rather than a device-RNG draw, so
    // fuzzed runs replay bit-identically at any GPUCC_THREADS and a
    // runtime toggle never reorders the RNG stream other consumers see.
    if (Cycle f = dev->mitigations().timerFuzzCycles; f != 0) {
        using sim::exec::splitmix64;
        std::uint64_t salt = (std::uint64_t(smPtr->id()) << 32) |
                             globalWarpId();
        std::uint64_t h = splitmix64(
            dev->mitigations().timerFuzzSeed ^
            splitmix64(static_cast<std::uint64_t>(dev->now()) +
                       splitmix64(salt + 0x66757a7aULL)));
        std::int64_t amp = static_cast<std::int64_t>(f);
        noise += static_cast<std::int64_t>(
                     h % static_cast<std::uint64_t>(2 * amp + 1)) -
                 amp;
    }
    // Fault-injected jitter windows: a stateless hash of (tick, warp)
    // rather than the device RNG, so the perturbation itself never
    // reorders the RNG stream other consumers see.
    if (auto *inj = dev->faultHooks()) {
        std::uint64_t salt = (std::uint64_t(smPtr->id()) << 32) |
                             globalWarpId();
        noise += inj->latencyJitterAt(dev->now(), salt);
    }
    if (noise == 0)
        return cycles;
    std::int64_t v = static_cast<std::int64_t>(cycles) + noise;
    return v > 0 ? static_cast<std::uint64_t>(v) : 0;
}

int
WarpCtx::partitionDomain() const
{
    if (!dev->mitigations().cacheWayPartitioning)
        return -1;
    // Applications are told apart by the stream their kernel arrived on.
    return static_cast<int>(blockPtr->kernel().stream().id() % 2);
}

Tick
WarpCtx::issueOp(OpClass op, Tick now) const
{
    const ArchParams &arch = dev->arch();
    const OpTiming &t = arch.timing(op);
    auto &sched = smPtr->scheduler(warpPtr->schedulerId());
    auto d = sched.dispatch().acquire(now, cyclesToTicks(Cycle(1)));
    auto f = sched.port(t.fu).acquire(d.serviceStart, t.occTicks);
    if (auto *tr = dev->traceShard();
        tr && tr->wants(sim::trace::Cat::Fu)) {
        static constexpr const char *fuNames[] = {"SP", "DPU", "SFU",
                                                  "LDST"};
        unsigned fuIdx = static_cast<unsigned>(t.fu);
        std::uint32_t tid = 2000 + smPtr->id() * 100 +
                            warpPtr->schedulerId() * 10 + fuIdx;
        tr->nameRow(tid, strfmt("sm%u sched%u %s", smPtr->id(),
                                warpPtr->schedulerId(), fuNames[fuIdx]));
        tr->span(sim::trace::Cat::Fu, tid, opClassName(op),
                 f.serviceStart, f.serviceEnd, "warp", globalWarpId());
    }
    return f.serviceEnd + cyclesToTicks(t.latencyCycles);
}

WarpCtx::Await
WarpCtx::clock()
{
    const ArchParams &arch = dev->arch();
    Tick now = effNow();
    Tick start = issueDispatch(now);
    Tick done = start + cyclesToTicks(arch.clockReadCycles);
    Cycle q = arch.clockQuantumCycles ? arch.clockQuantumCycles : 1;
    // A clock-degrade fault window may demand a coarser counter than
    // the architecture (or active mitigation) provides.
    if (auto *inj = dev->faultHooks())
        q = std::max(q, std::max<Cycle>(inj->clockQuantumAt(now), 1));
    Cycle value = (ticksToCycles(start) / q) * q;
    return Await(*this, done, value);
}

unsigned
WarpCtx::smid() const
{
    return smPtr->id();
}

unsigned
WarpCtx::blockId() const
{
    return blockPtr->id();
}

unsigned
WarpCtx::warpInBlock() const
{
    return warpPtr->indexInBlock();
}

unsigned
WarpCtx::globalWarpId() const
{
    return blockPtr->id() * blockPtr->kernel().config().warpsPerBlock() +
           warpPtr->indexInBlock();
}

unsigned
WarpCtx::schedulerId() const
{
    return warpPtr->schedulerId();
}

unsigned
WarpCtx::threadId(unsigned lane) const
{
    return blockPtr->id() * blockPtr->kernel().config().threadsPerBlock +
           warpPtr->indexInBlock() * warpSize + lane;
}

WarpCtx::Await
WarpCtx::op(OpClass opClass)
{
    Tick now = effNow();
    Tick done = issueOp(opClass, now);
    // Round to the nearest cycle: sub-cycle issue occupancies would
    // otherwise truncate away (e.g. Kepler FAdd at 5.67 cycles).
    Cycle lat = ticksToCycles(done - now + ticksPerCycle / 2);
    return Await(*this, done, fuzzLatency(lat));
}

WarpCtx::Await
WarpCtx::sleep(Cycle cycles)
{
    Tick now = effNow();
    return Await(*this, now + cyclesToTicks(cycles), cycles);
}

void
WarpCtx::LoadAwait::compute() noexcept
{
    WarpCtx &c = *ctx;
    Tick now = c.effNow();
    Tick start = c.issueDispatch(now);
    int app = static_cast<int>(c.blockPtr->kernel().stream().id());
    auto res = c.dev->constMem().access(c.smPtr->id(), addr, start,
                                        c.partitionDomain(), app);
    when = res.completion;
    result = c.fuzzLatency(ticksToCycles(res.completion - now));
    computed = true;
}

DeviceTask<std::uint64_t>
WarpCtx::constLoadSeq(std::vector<Addr> addrs)
{
    GPUCC_ASSERT(!addrs.empty(), "empty constant load sequence");
    std::uint64_t total = 0;
    for (Addr a : addrs)
        total += co_await constLoad(a);
    co_return total;
}

void
WarpCtx::GmemAwait::compute() noexcept
{
    WarpCtx &c = *ctx;
    GPUCC_ASSERT(!laneAddrs->empty(), "empty global-memory address list");
    Tick now = c.effNow();
    Tick start = c.issueDispatch(now);
    auto &sched = c.smPtr->scheduler(c.warpPtr->schedulerId());
    auto l = sched.port(FuType::LDST).acquire(start,
                                              cyclesToTicks(Cycle(1)));
    Tick done = 0;
    switch (kind) {
    case Kind::AtomicAdd:
        done = c.dev->globalMem().atomicAdd(*laneAddrs, value,
                                            l.serviceEnd);
        if (auto *tr = c.dev->traceShard();
            tr && tr->wants(sim::trace::Cat::Atomic)) {
            std::uint32_t tid = 4000 + c.smPtr->id();
            tr->nameRow(tid, strfmt("sm%u atomics", c.smPtr->id()));
            tr->span(sim::trace::Cat::Atomic, tid, "atomicAdd", now,
                     done, "lanes", laneAddrs->size());
        }
        break;
    case Kind::Load:
        done = c.dev->globalMem().load(*laneAddrs, l.serviceEnd);
        break;
    case Kind::Store:
        done = c.dev->globalMem().store(*laneAddrs, l.serviceEnd);
        break;
    }
    when = done;
    // Global-memory/atomic latencies are program-observable timings
    // too: TimeWarp-style fuzzing must cover them or the atomic
    // channel sidesteps the mitigation entirely.
    result = c.fuzzLatency(ticksToCycles(done - now));
    computed = true;
}

unsigned
WarpCtx::bankConflictDegree(const std::vector<Addr> &laneOffsets) const
{
    unsigned banks = dev->arch().smemBanks;
    std::vector<unsigned> perBank(banks, 0);
    unsigned worst = 0;
    for (Addr off : laneOffsets) {
        unsigned bank = static_cast<unsigned>((off / 4) % banks);
        worst = std::max(worst, ++perBank[bank]);
    }
    return worst;
}

WarpCtx::Await
WarpCtx::sharedAccess(const std::vector<Addr> &laneOffsets)
{
    GPUCC_ASSERT(!laneOffsets.empty(), "empty shared-memory access");
    const ArchParams &arch = dev->arch();
    Tick now = effNow();
    Tick start = issueDispatch(now);
    // Bank conflicts serialize the lanes *within this warp's access*:
    // the replays occupy the warp, not a shared structure, which is why
    // this artifact cannot be observed by a competing kernel (§10).
    unsigned degree = bankConflictDegree(laneOffsets);
    auto &sched = smPtr->scheduler(warpPtr->schedulerId());
    auto l = sched.port(FuType::LDST).acquire(start,
                                              cyclesToTicks(Cycle(1)));
    Tick done = l.serviceEnd +
                cyclesToTicks(arch.smemBaseCycles +
                              Cycle(degree - 1) * arch.smemConflictCycles);
    return Await(*this, done,
                 fuzzLatency(ticksToCycles(done - now)));
}

void
WarpCtx::smemWrite(Addr offset, std::uint32_t value)
{
    blockPtr->smemWrite(offset, value);
}

std::uint32_t
WarpCtx::smemRead(Addr offset) const
{
    return blockPtr->smemRead(offset);
}

WarpCtx::BarrierAwait
WarpCtx::syncthreads()
{
    return BarrierAwait(*this);
}

void
WarpCtx::out(std::uint64_t value)
{
    blockPtr->kernel().out(globalWarpId()).push_back(value);
}

} // namespace gpucc::gpu

#include "gpu/warp_scheduler.h"

#include "common/log.h"

namespace gpucc::gpu
{

WarpScheduler::WarpScheduler(const ArchParams &arch, unsigned smId,
                             unsigned schedId_)
    : schedId(schedId_),
      dispatchPool(strfmt("sm%u.s%u.dispatch", smId, schedId_),
                   arch.dispatchUnitsPerScheduler),
      spPort(strfmt("sm%u.s%u.sp", smId, schedId_), 1),
      dpPort(strfmt("sm%u.s%u.dp", smId, schedId_), 1),
      sfuPort(strfmt("sm%u.s%u.sfu", smId, schedId_), 1),
      ldstPort(strfmt("sm%u.s%u.ldst", smId, schedId_), 1)
{
}

sim::ResourcePool &
WarpScheduler::port(FuType fu)
{
    switch (fu) {
      case FuType::SP:
        return spPort;
      case FuType::DPU:
        return dpPort;
      case FuType::SFU:
        return sfuPort;
      case FuType::LDST:
        return ldstPort;
    }
    GPUCC_PANIC("unknown FU type");
}

} // namespace gpucc::gpu

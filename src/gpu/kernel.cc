#include "gpu/kernel.h"

#include "common/log.h"

namespace gpucc::gpu
{

KernelInstance::KernelInstance(std::uint64_t id, KernelLaunch launch,
                               Stream &stream)
    : kernelId(id), launchDesc(std::move(launch)), owningStream(&stream)
{
    GPUCC_ASSERT(launchDesc.config.gridBlocks >= 1,
                 "%s: empty grid", launchDesc.name.c_str());
    GPUCC_ASSERT(launchDesc.config.threadsPerBlock >= 1,
                 "%s: empty block", launchDesc.name.c_str());
    GPUCC_ASSERT(static_cast<bool>(launchDesc.body),
                 "%s: kernel has no body", launchDesc.name.c_str());
    outputs.resize(totalWarps());
    records.reserve(launchDesc.config.gridBlocks);
    pending.reserve(launchDesc.config.gridBlocks);
    for (unsigned b = 0; b < launchDesc.config.gridBlocks; ++b)
        pending.push_back(b);
}

KernelInstance::KernelInstance(const KernelInstance &src, Stream &stream)
    : kernelId(src.kernelId), launchDesc(src.launchDesc),
      owningStream(&stream), pending(src.pending),
      blocksDone(src.blocksDone), doneFlag(src.doneFlag),
      started(src.started), arrival(src.arrival), start(src.start),
      end(src.end), outputs(src.outputs), records(src.records)
{
}

bool
KernelInstance::fullyPlaced() const
{
    return pending.empty();
}

unsigned
KernelInstance::notePlaced()
{
    GPUCC_ASSERT(!fullyPlaced(), "%s: all blocks already placed",
                 launchDesc.name.c_str());
    unsigned id = pending.front();
    pending.erase(pending.begin());
    return id;
}

void
KernelInstance::requeueBlock(unsigned blockId)
{
    GPUCC_ASSERT(blockId < launchDesc.config.gridBlocks,
                 "%s: bad requeue id %u", launchDesc.name.c_str(), blockId);
    pending.push_back(blockId);
}

unsigned
KernelInstance::residentBlocks() const
{
    unsigned placed = launchDesc.config.gridBlocks -
                      static_cast<unsigned>(pending.size());
    return placed - blocksDone;
}

void
KernelInstance::noteBlockDone()
{
    ++blocksDone;
    GPUCC_ASSERT(blocksDone <= launchDesc.config.gridBlocks,
                 "%s: more blocks retired than launched",
                 launchDesc.name.c_str());
    if (blocksDone == launchDesc.config.gridBlocks)
        doneFlag = true;
}

void
KernelInstance::noteStart(Tick t)
{
    if (!started) {
        started = true;
        start = t;
    }
}

std::vector<std::uint64_t> &
KernelInstance::out(unsigned globalWarpIdx)
{
    GPUCC_ASSERT(globalWarpIdx < outputs.size(), "%s: warp %u out of range",
                 launchDesc.name.c_str(), globalWarpIdx);
    return outputs[globalWarpIdx];
}

const std::vector<std::uint64_t> &
KernelInstance::out(unsigned globalWarpIdx) const
{
    GPUCC_ASSERT(globalWarpIdx < outputs.size(), "%s: warp %u out of range",
                 launchDesc.name.c_str(), globalWarpIdx);
    return outputs[globalWarpIdx];
}

unsigned
KernelInstance::totalWarps() const
{
    return launchDesc.config.gridBlocks * launchDesc.config.warpsPerBlock();
}

} // namespace gpucc::gpu

/**
 * @file
 * Coroutine plumbing for device programs.
 *
 * A kernel body is a C++20 coroutine executed once per warp (the SIMT
 * model at warp granularity). Each device operation is an awaitable:
 * awaiting it charges simulated time through the timing model and
 * suspends the warp until the operation's completion tick. The warp is
 * resumed by the device event queue, so concurrent warps interleave in
 * global simulated-time order.
 */

#ifndef GPUCC_GPU_WARP_PROGRAM_H
#define GPUCC_GPU_WARP_PROGRAM_H

#include <coroutine>
#include <exception>
#include <utility>

#include "sim/frame_arena.h"

namespace gpucc::gpu
{

/** Return type of a warp-granularity kernel body coroutine. */
class WarpProgram
{
  public:
    struct promise_type
    {
        // Frames churn once per launched warp; recycle them through the
        // thread-local arena instead of the global allocator.
        static void *
        operator new(std::size_t n)
        {
            return sim::FrameArena::allocate(n);
        }

        static void
        operator delete(void *p) noexcept
        {
            sim::FrameArena::deallocate(p);
        }

        WarpProgram
        get_return_object()
        {
            return WarpProgram(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_void() noexcept {}
        void unhandled_exception() { std::terminate(); }
    };

    using Handle = std::coroutine_handle<promise_type>;

    WarpProgram() = default;
    explicit WarpProgram(Handle h) : coro(h) {}

    WarpProgram(const WarpProgram &) = delete;
    WarpProgram &operator=(const WarpProgram &) = delete;

    WarpProgram(WarpProgram &&other) noexcept
        : coro(std::exchange(other.coro, nullptr))
    {
    }

    WarpProgram &
    operator=(WarpProgram &&other) noexcept
    {
        if (this != &other) {
            destroy();
            coro = std::exchange(other.coro, nullptr);
        }
        return *this;
    }

    ~WarpProgram() { destroy(); }

    /** Underlying coroutine handle (empty when default constructed). */
    Handle handle() const { return coro; }

    /** @return true when the body ran to completion. */
    bool done() const { return !coro || coro.done(); }

    /** @return true when a coroutine is attached. */
    bool valid() const { return static_cast<bool>(coro); }

  private:
    void
    destroy()
    {
        if (coro) {
            coro.destroy();
            coro = nullptr;
        }
    }

    Handle coro;
};

} // namespace gpucc::gpu

#endif // GPUCC_GPU_WARP_PROGRAM_H

/**
 * @file
 * A thread block resident on an SM: owns its warps and implements the
 * block-wide barrier (__syncthreads()).
 */

#ifndef GPUCC_GPU_THREAD_BLOCK_H
#define GPUCC_GPU_THREAD_BLOCK_H

#include <coroutine>
#include <memory>
#include <vector>

#include "common/types.h"
#include "gpu/kernel.h"
#include "sim/frame_arena.h"

namespace gpucc::gpu
{

class Device;
class Sm;
class Warp;

/** A placed, executing thread block. */
class ThreadBlock
{
  public:
    /**
     * @param kernel Owning kernel instance.
     * @param blockId Block index within the grid.
     * @param sm SM the block was placed on.
     */
    ThreadBlock(KernelInstance &kernel, unsigned blockId, Sm &sm);
    ~ThreadBlock();

    ThreadBlock(const ThreadBlock &) = delete;
    ThreadBlock &operator=(const ThreadBlock &) = delete;

    // Blocks churn once per kernel launch; recycle their storage
    // through the thread-local arena, like warps and frames.
    static void *
    operator new(std::size_t n)
    {
        return sim::FrameArena::allocate(n);
    }

    static void
    operator delete(void *p) noexcept
    {
        sim::FrameArena::deallocate(p);
    }

    /**
     * Create the warps (round-robin scheduler assignment) and schedule
     * their first execution at @p startTick.
     */
    void start(Tick startTick);

    /** Called by a warp when its body completes. */
    void warpFinished(Warp &warp);

    /**
     * Preempt the block (SMK scheduling): cancel every live warp. The
     * caller releases the SM resources and requeues the block id; the
     * object stays alive so already-scheduled resume events are no-ops.
     */
    void cancel(Tick when);

    /** @return true once preempted. */
    bool cancelled() const { return cancelledFlag; }

    /**
     * Register @p warp (suspended at @p h) at the block barrier.
     * @p arrival is the warp's logical arrival time (WarpCtx::effNow()),
     * which can be ahead of the global clock for a ran-ahead warp; the
     * release is charged from the latest arrival.
     */
    void arriveBarrier(Warp &warp, std::coroutine_handle<> h, Tick arrival);

    /** Owning kernel. */
    KernelInstance &kernel() { return *kernelInst; }

    /** Block id within the grid. */
    unsigned id() const { return blockId; }

    /** Hosting SM. */
    Sm &sm() { return *hostSm; }

    /** Number of warps in the block. */
    unsigned numWarps() const;

    /** @return true when all warps completed. */
    bool done() const;

    /** Scheduling record index into kernel().blockRecords(). */
    std::size_t recordIndex() const { return recordIdx; }

    /** Functional write into the block's shared memory (4-byte word). */
    void smemWrite(Addr offset, std::uint32_t value);

    /** Functional read from the block's shared memory (4-byte word). */
    std::uint32_t smemRead(Addr offset) const;

  private:
    KernelInstance *kernelInst;
    unsigned blockId;
    Sm *hostSm;
    std::vector<std::unique_ptr<Warp>> warps;
    std::vector<std::pair<Warp *, std::coroutine_handle<>>> barrierWaiters;
    /** Waiters handed to an in-flight batched barrier-release event. */
    std::vector<std::pair<Warp *, std::coroutine_handle<>>> pendingRelease;
    unsigned warpsDone = 0;
    Tick barrierArriveTick = 0; //!< latest logical arrival this round
    Tick lastFinishTick = 0;    //!< latest logical warp-finish time
    std::size_t recordIdx = 0;
    bool cancelledFlag = false;
    std::vector<std::uint32_t> smem; //!< functional shared-memory words
};

} // namespace gpucc::gpu

#endif // GPUCC_GPU_THREAD_BLOCK_H

/**
 * @file
 * Host-process model. Each HostContext represents one CPU application
 * (the trojan and the spy are separate applications) launching kernels
 * through the driver: every launch pays host overhead, a
 * launch-to-device latency, and a per-process random jitter. The jitter
 * is what makes unsynchronized launch-per-bit channels lose overlap at
 * low iteration counts (Figure 5).
 */

#ifndef GPUCC_GPU_HOST_H
#define GPUCC_GPU_HOST_H

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/types.h"
#include "gpu/device.h"

namespace gpucc::gpu
{

/** One host application using the device. */
class HostContext
{
  public:
    /**
     * @param dev Shared device.
     * @param seed Per-process jitter seed.
     */
    explicit HostContext(Device &dev, std::uint64_t seed = 1);

    /** Create a stream owned by this application. */
    Stream &createStream() { return dev->createStream(); }

    /** Launch @p launch on @p stream; returns the kernel instance. */
    KernelInstance &launch(Stream &stream, KernelLaunch launch);

    /** Block until @p kernel completes; advances host time. */
    void sync(const KernelInstance &kernel);

    /** Drain the device completely; advances host time. */
    void syncAll();

    /** Host time in device ticks. */
    Tick now() const { return hostTick; }

    /** Host time in seconds. */
    double seconds() const { return dev->arch().secondsFromTicks(hostTick); }

    /** Override the launch jitter amplitude (us); default per-arch. */
    void setJitterUs(double us) { jitterUs = us; }

    /** Let host time idle forward by @p us microseconds. */
    void advanceUs(double us);

    /** Bring host time up to the device's current tick (no overhead). */
    void catchUpToDevice();

    /** Bring host time up to at least @p tick (no overhead). */
    void catchUpTo(Tick tick);

    /** Underlying device. */
    Device &device() { return *dev; }

    /**
     * Host-side state for channel checkpoint/restore: the host clock,
     * the jitter amplitude and the exact position of the jitter RNG
     * stream, so a restored host draws the same jitter sequence the
     * original would have.
     */
    struct State
    {
        Tick hostTick = 0;
        double jitterUs = 0.0;
        std::string rngState;
    };

    /** Capture host state (device state is captured separately). */
    State captureState() const
    {
        return State{hostTick, jitterUs, rng.saveState()};
    }

    /** Restore state captured from a same-role host. */
    void restoreState(const State &s)
    {
        hostTick = s.hostTick;
        jitterUs = s.jitterUs;
        rng.restoreState(s.rngState);
    }

  private:
    Device *dev;
    Rng rng;
    Tick hostTick = 0;
    double jitterUs;
};

} // namespace gpucc::gpu

#endif // GPUCC_GPU_HOST_H

#include "gpu/arch_params.h"

#include <vector>

#include "common/log.h"

namespace gpucc::gpu
{

const char *
generationName(Generation g)
{
    switch (g) {
      case Generation::Fermi:
        return "Fermi";
      case Generation::Kepler:
        return "Kepler";
      case Generation::Maxwell:
        return "Maxwell";
    }
    return "?";
}

const char *
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::FAdd:
        return "Add";
      case OpClass::FMul:
        return "Mul";
      case OpClass::Sinf:
        return "__sinf";
      case OpClass::Sqrt:
        return "sqrt";
      case OpClass::DAdd:
        return "Add (double)";
      case OpClass::DMul:
        return "Mul (double)";
      case OpClass::IAdd:
        return "iadd";
    }
    return "?";
}

const OpTiming &
ArchParams::timing(OpClass op) const
{
    auto it = ops.find(op);
    GPUCC_ASSERT(it != ops.end(), "%s: no timing for op %s", name.c_str(),
                 opClassName(op));
    if (!it->second.supported) {
        GPUCC_FATAL("%s does not support %s (no functional units)",
                    name.c_str(), opClassName(op));
    }
    return it->second;
}

bool
ArchParams::supports(OpClass op) const
{
    auto it = ops.find(op);
    return it != ops.end() && it->second.supported;
}

unsigned
ArchParams::fuCount(FuType fu) const
{
    switch (fu) {
      case FuType::SP:
        return spUnits;
      case FuType::DPU:
        return dpUnits;
      case FuType::SFU:
        return sfuUnits;
      case FuType::LDST:
        return ldstUnits;
    }
    return 0;
}

Tick
warpIssueOccTicks(double unitsPerScheduler, double scale)
{
    double cycles = (static_cast<double>(warpSize) / unitsPerScheduler) *
                    scale;
    return cyclesToTicks(cycles);
}

namespace
{

/** Preset-local shorthand for warpIssueOccTicks. */
Tick
warpOcc(double unitsPerScheduler, double scale = 1.0)
{
    return warpIssueOccTicks(unitsPerScheduler, scale);
}

} // namespace

ArchParams
fermiC2075()
{
    ArchParams a;
    a.name = "Tesla C2075";
    a.generation = Generation::Fermi;
    a.numSms = 14;
    a.clockGHz = 1.15;
    a.schedulersPerSm = 2;
    a.dispatchUnitsPerScheduler = 1;
    a.spUnits = 32;
    a.dpUnits = 16;
    a.sfuUnits = 4;
    a.ldstUnits = 16;

    a.limits.maxThreads = 1536;
    a.limits.maxBlocks = 8;
    a.limits.maxWarps = 48;
    a.limits.numRegs = 32768;
    a.limits.smemBytes = 48 * 1024;
    a.limits.smemPerBlockBytes = 48 * 1024;

    a.constMem.l1 = {4096, 64, 4};   // 4 KB, 64 B lines, 4-way (16 sets)
    a.constMem.l2 = {32768, 256, 8}; // 32 KB, 256 B lines, 8-way (16 sets)
    a.constMem.l1HitCycles = 56;
    a.constMem.l2HitCycles = 130;
    a.constMem.memCycles = 300;

    a.gmem.numPartitions = 6;
    a.gmem.atomicOccCycles = 9;      // pre-Kepler slow RMW atomics
    a.gmem.atomicTxnOverheadCycles = 20;
    a.gmem.atomicLatencyCycles = 360;
    a.gmem.loadLatencyCycles = 450;
    a.gmem.txnOccCycles = 4;

    a.host.launchOverheadUs = 5.0;
    a.host.launchLatencyUs = 9.0;
    a.host.syncOverheadUs = 4.0;

    // Issue occupancies per scheduler-level port: Fermi has 2 schedulers
    // soft-sharing the SM's units, so each scheduler fronts half of them.
    const double spPerSched = 32.0 / 2.0;
    const double dpPerSched = 16.0 / 2.0;
    const double sfuPerSched = 4.0 / 2.0;
    a.ops[OpClass::FAdd] = {FuType::SP, 14, warpOcc(spPerSched), true};
    a.ops[OpClass::FMul] = {FuType::SP, 14, warpOcc(spPerSched), true};
    a.ops[OpClass::IAdd] = {FuType::SP, 14, warpOcc(spPerSched), true};
    a.ops[OpClass::Sinf] = {FuType::SFU, 25, warpOcc(sfuPerSched), true};
    // sqrt is a multi-pass SFU sequence: higher latency and ~2.3x the
    // port occupancy of a single SFU pass.
    a.ops[OpClass::Sqrt] = {FuType::SFU, 113, warpOcc(sfuPerSched, 2.3),
                            true};
    a.ops[OpClass::DAdd] = {FuType::DPU, 16, warpOcc(dpPerSched), true};
    a.ops[OpClass::DMul] = {FuType::DPU, 16, warpOcc(dpPerSched), true};
    return a;
}

ArchParams
keplerK40c()
{
    ArchParams a;
    a.name = "Tesla K40C";
    a.generation = Generation::Kepler;
    a.numSms = 15;
    a.clockGHz = 0.745;
    a.schedulersPerSm = 4;
    a.dispatchUnitsPerScheduler = 2;
    a.spUnits = 192;
    a.dpUnits = 64;
    a.sfuUnits = 32;
    a.ldstUnits = 32;

    a.limits.maxThreads = 2048;
    a.limits.maxBlocks = 16;
    a.limits.maxWarps = 64;
    a.limits.numRegs = 65536;
    a.limits.smemBytes = 48 * 1024;
    a.limits.smemPerBlockBytes = 48 * 1024;

    a.constMem.l1 = {2048, 64, 4};   // 2 KB, 64 B lines, 4-way (8 sets)
    a.constMem.l2 = {32768, 256, 8};
    a.constMem.l1HitCycles = 46;
    a.constMem.l2HitCycles = 106;
    a.constMem.memCycles = 248;

    a.gmem.numPartitions = 6;
    a.gmem.atomicOccCycles = 1;      // L2-resident atomics, 1 op/clk/line
    a.gmem.atomicTxnOverheadCycles = 8;
    a.gmem.atomicLatencyCycles = 180;
    a.gmem.loadLatencyCycles = 350;
    a.gmem.txnOccCycles = 2;

    a.host.launchOverheadUs = 3.2;
    a.host.launchLatencyUs = 5.0;
    a.host.syncOverheadUs = 2.0;

    const double spPerSched = 192.0 / 4.0;
    const double dpPerSched = 64.0 / 4.0;
    const double sfuPerSched = 32.0 / 4.0;
    a.ops[OpClass::FAdd] = {FuType::SP, 5, warpOcc(spPerSched), true};
    a.ops[OpClass::FMul] = {FuType::SP, 5, warpOcc(spPerSched), true};
    a.ops[OpClass::IAdd] = {FuType::SP, 5, warpOcc(spPerSched), true};
    a.ops[OpClass::Sinf] = {FuType::SFU, 14, warpOcc(sfuPerSched), true};
    a.ops[OpClass::Sqrt] = {FuType::SFU, 128, warpOcc(sfuPerSched, 5.5),
                            true};
    a.ops[OpClass::DAdd] = {FuType::DPU, 6, warpOcc(dpPerSched, 1.2), true};
    a.ops[OpClass::DMul] = {FuType::DPU, 6, warpOcc(dpPerSched, 1.2), true};
    return a;
}

ArchParams
maxwellM4000()
{
    ArchParams a;
    a.name = "Quadro M4000";
    a.generation = Generation::Maxwell;
    a.numSms = 13;
    a.clockGHz = 0.772;
    a.schedulersPerSm = 4; // one per SM quadrant with dedicated units
    a.dispatchUnitsPerScheduler = 2;
    a.spUnits = 128;
    a.dpUnits = 0;
    a.sfuUnits = 32;
    a.ldstUnits = 32;

    a.limits.maxThreads = 2048;
    a.limits.maxBlocks = 32;
    a.limits.maxWarps = 64;
    a.limits.numRegs = 65536;
    a.limits.smemBytes = 96 * 1024;        // twice the per-block cap
    a.limits.smemPerBlockBytes = 48 * 1024;

    a.constMem.l1 = {2048, 64, 4};
    a.constMem.l2 = {32768, 256, 8};
    a.constMem.l1HitCycles = 44;
    a.constMem.l2HitCycles = 100;
    a.constMem.memCycles = 240;

    a.gmem.numPartitions = 4;
    a.gmem.atomicOccCycles = 1;
    a.gmem.atomicTxnOverheadCycles = 8;
    a.gmem.atomicLatencyCycles = 170;
    a.gmem.loadLatencyCycles = 330;
    a.gmem.txnOccCycles = 2;

    a.host.launchOverheadUs = 3.2;
    a.host.launchLatencyUs = 5.0;
    a.host.syncOverheadUs = 2.0;

    const double spPerQuad = 128.0 / 4.0;
    const double sfuPerQuad = 32.0 / 4.0;
    a.ops[OpClass::FAdd] = {FuType::SP, 5, warpOcc(spPerQuad, 1.4), true};
    a.ops[OpClass::FMul] = {FuType::SP, 5, warpOcc(spPerQuad, 1.4), true};
    a.ops[OpClass::IAdd] = {FuType::SP, 5, warpOcc(spPerQuad), true};
    a.ops[OpClass::Sinf] = {FuType::SFU, 11, warpOcc(sfuPerQuad), true};
    a.ops[OpClass::Sqrt] = {FuType::SFU, 110, warpOcc(sfuPerQuad, 6.3),
                            true};
    a.ops[OpClass::DAdd] = {FuType::DPU, 0, 0, false};
    a.ops[OpClass::DMul] = {FuType::DPU, 0, 0, false};
    return a;
}

std::vector<ArchParams>
allArchitectures()
{
    return {fermiC2075(), keplerK40c(), maxwellM4000()};
}

} // namespace gpucc::gpu

/**
 * @file
 * Runtime mitigation policies: the pre-planned scheduler and the
 * detector-driven reactive defender (see mitigations.h).
 *
 * Layering note: this is the one gpu/ translation unit that reaches up
 * into covert/detection — the reactive defender *is* the detector's
 * consumer, and cc_detector.h itself depends only on mem/. Everything
 * links into the single gpucc static library, so no cycle exists at
 * the build level either.
 */

#include "gpu/mitigations.h"

#include <algorithm>

#include "covert/detection/cc_detector.h"
#include "gpu/device.h"
#include "sim/exec/sweep_runner.h"

namespace gpucc::gpu
{

std::vector<DefenseRung>
defaultDefenseLadder()
{
    std::vector<DefenseRung> ladder;
    MitigationConfig c;
    c.timerFuzzCycles = 64;
    ladder.push_back({"fuzz64", c});
    c.timerFuzzCycles = 256;
    ladder.push_back({"fuzz256", c});
    c.cacheWayPartitioning = true;
    ladder.push_back({"fuzz256+waypart", c});
    c.randomizeWarpSchedulers = true;
    ladder.push_back({"fuzz256+waypart+randsched", c});
    c.temporalPartitioning = true;
    c.flushCachesBetweenKernels = true;
    ladder.push_back({"fuzz256+waypart+randsched+temporal+flush", c});
    return ladder;
}

MitigationScheduler::MitigationScheduler(Device &dev_,
                                         MitigationSchedule schedule)
    : dev(&dev_), sched(std::move(schedule))
{
}

void
MitigationScheduler::arm()
{
    auto &q = dev->events();
    Tick base = q.now();
    for (const MitigationStep &step : sched.steps) {
        // A copy of the step config is baked into the event; firing is
        // a plain (non-neutral) event, so the elision fast path can
        // never skip a warp's clock past an activation edge.
        MitigationConfig cfg = step.cfg;
        q.schedule(base + cyclesToTicks(step.atCycle), [this, cfg] {
            dev->setMitigations(cfg);
            ++appliedSteps;
        });
    }
}

ReactiveDefender::ReactiveDefender(Device &dev_, ReactiveDefenderConfig c)
    : dev(&dev_), cfg(std::move(c))
{
    rungs = cfg.ladder.empty() ? defaultDefenseLadder() : cfg.ladder;
}

void
ReactiveDefender::arm()
{
    GPUCC_ASSERT(!isArmed, "ReactiveDefender armed twice");
    isArmed = true;
    baseline = dev->mitigations();
    st = ReactiveDefenderStats{};
    alarmStreak = 0;
    quietStreak = 0;
    dev->constMem().setEvictionTracing(true);
    dev->constMem().clearEvictionTrace();
    dev->setDefenseHook(this);
    auto &reg = dev->metricsRegistry();
    reg.counter("defense.samples");
    reg.counter("defense.alarms");
    reg.counter("defense.escalations");
    reg.counter("defense.deescalations");
    reg.gauge("defense.rung",
              [this] { return static_cast<double>(st.rung); });
    scheduleSample();
}

void
ReactiveDefender::disarm()
{
    if (!isArmed)
        return;
    isArmed = false;
    dev->setDefenseHook(nullptr);
    dev->constMem().setEvictionTracing(false);
}

void
ReactiveDefender::noteKernelSubmitted()
{
    // Sampling lapsed while the queue drained (host sync between
    // exchanges); a fresh kernel means observable work is back.
    if (isArmed && !samplePending && st.samples < cfg.maxSamples)
        scheduleSample();
}

Tick
ReactiveDefender::nextSampleDelay()
{
    // Deterministic per (config, seed): phase jitter is a pure hash of
    // the sample index — no wall clock, no device RNG.
    using sim::exec::splitmix64;
    Cycle period = cfg.samplePeriodCycles > 0 ? cfg.samplePeriodCycles : 1;
    std::uint64_t h = splitmix64(cfg.seed ^ splitmix64(st.samples + 1));
    Cycle jitter = period >= 8 ? h % (period / 8) : 0;
    return cyclesToTicks(period + jitter);
}

void
ReactiveDefender::scheduleSample()
{
    samplePending = true;
    dev->events().schedule(dev->events().now() + nextSampleDelay(),
                           [this] { onSample(); });
}

void
ReactiveDefender::onSample()
{
    samplePending = false;
    if (!isArmed)
        return;
    ++st.samples;
    auto &reg = dev->metricsRegistry();
    reg.counter("defense.samples").inc();

    covert::DetectorConfig dc;
    dc.minCrossEvictions = cfg.minCrossEvictions;
    dc.oscillationThreshold = cfg.oscillationThreshold;
    auto verdict =
        covert::analyzeEvictionTrace(dev->constMem().evictionTrace(), dc);
    // Each sample scores only fresh evictions; clearing also keeps the
    // trace bounded over arbitrarily long defended runs.
    dev->constMem().clearEvictionTrace();

    if (verdict.covertChannelSuspected) {
        ++st.alarms;
        reg.counter("defense.alarms").inc();
        quietStreak = 0;
        if (++alarmStreak >= cfg.alarmsToEscalate) {
            alarmStreak = 0;
            if (st.rung + 1 < static_cast<int>(rungs.size())) {
                applyRung(st.rung + 1);
                ++st.escalations;
                reg.counter("defense.escalations").inc();
            }
        }
    } else {
        alarmStreak = 0;
        if (++quietStreak >= cfg.quietToDeescalate) {
            quietStreak = 0;
            if (st.rung >= 0) {
                applyRung(st.rung - 1);
                ++st.deescalations;
                reg.counter("defense.deescalations").inc();
            }
        }
    }

    if (st.samples >= cfg.maxSamples)
        return;
    // Same discipline as the metrics sampler: re-arm only while other
    // work is pending so runUntilIdle() terminates; the submit() hook
    // revives sampling when the next kernel arrives.
    if (!dev->events().empty())
        scheduleSample();
}

void
ReactiveDefender::applyRung(int r)
{
    st.rung = r;
    st.peakRung = std::max(st.peakRung, r);
    dev->setMitigations(r >= 0 ? rungs[static_cast<std::size_t>(r)].cfg
                               : baseline);
}

} // namespace gpucc::gpu

#include "gpu/device.h"

#include <algorithm>
#include <atomic>

#include "common/log.h"
#include "gpu/thread_block.h"

namespace gpucc::gpu
{

namespace
{

/** Process-wide ordinal for GPUCC_TRACE auto-attach labels. */
std::atomic<unsigned> traceDeviceOrdinal{0};

} // namespace

Device::Device(ArchParams arch) : params(std::move(arch))
{
    cmem = std::make_unique<mem::ConstMemory>(params.constMem,
                                              params.numSms);
    gmem = std::make_unique<mem::GlobalMemory>(params.gmem);
    for (unsigned i = 0; i < params.numSms; ++i)
        sms.push_back(std::make_unique<Sm>(*this, i));
    blockSched = std::make_unique<BlockScheduler>(*this);
    registerDeviceMetrics();
    if (auto *session = sim::trace::TraceSession::global()) {
        attachTrace(*session,
                    strfmt("device%u", traceDeviceOrdinal.fetch_add(1)));
    }
}

Device::~Device() = default;

void
Device::registerDeviceMetrics()
{
    queue.registerMetrics(registry);
    cmem->registerMetrics(registry);
    gmem->registerMetrics(registry);
    for (auto &s : sms)
        s->registerMetrics(registry);

    registry.gauge("device.ticks",
                   [this] { return static_cast<double>(queue.now()); });
    registry.gauge("kernels.launched", [this] {
        return static_cast<double>(instances.size());
    });
    registry.gauge("kernels.completed", [this] {
        std::uint64_t done = 0;
        for (const auto &k : instances)
            done += k->done() ? 1 : 0;
        return static_cast<double>(done);
    });
    registry.gauge("sched.preemptions", [this] {
        return static_cast<double>(blockSched->preemptions());
    });

    // Issue-port classes, aggregated over every scheduler of every SM.
    // Pull gauges read the ResourcePool tallies that already exist, so
    // the warp-issue hot path gains no new counter.
    struct PortClass
    {
        const char *key;
        int fu; //!< FuType index, -1 = dispatch pool
    };
    static constexpr PortClass classes[] = {
        {"dispatch", -1},
        {"sp", static_cast<int>(FuType::SP)},
        {"dpu", static_cast<int>(FuType::DPU)},
        {"sfu", static_cast<int>(FuType::SFU)},
        {"ldst", static_cast<int>(FuType::LDST)},
    };
    for (const auto &c : classes) {
        auto sum = [this, c](int what) {
            double total = 0.0;
            for (auto &s : sms) {
                for (unsigned i = 0; i < s->numSchedulers(); ++i) {
                    WarpScheduler &ws = s->scheduler(i);
                    sim::ResourcePool &pool =
                        c.fu < 0 ? ws.dispatch()
                                 : ws.port(static_cast<FuType>(c.fu));
                    total += what == 0
                                 ? static_cast<double>(pool.busyTicks())
                             : what == 1
                                 ? static_cast<double>(pool.requests())
                                 : static_cast<double>(pool.totalQueueing());
                }
            }
            return total;
        };
        registry.gauge(strfmt("fu.%s.busyTicks", c.key),
                       [sum] { return sum(0); });
        registry.gauge(strfmt("fu.%s.requests", c.key),
                       [sum] { return sum(1); });
        registry.gauge(strfmt("fu.%s.queueingTicks", c.key),
                       [sum] { return sum(2); });
    }
}

void
Device::attachTrace(sim::trace::TraceSession &session,
                    const std::string &label)
{
    trace = session.makeShard(label);
    cmem->setTraceShard(trace);
}

void
Device::sampleMetricsEvery(Cycle cycles)
{
    GPUCC_ASSERT(cycles > 0, "sampling interval must be positive");
    scheduleMetricsSample(cyclesToTicks(cycles));
}

void
Device::scheduleMetricsSample(Tick period)
{
    queue.schedule(queue.now() + period, [this, period] {
        registry.snapshot(queue.now());
        // Re-arm only while other work is pending; otherwise the
        // sampler would keep the queue alive forever.
        if (!queue.empty())
            scheduleMetricsSample(period);
    });
}

Sm &
Device::sm(unsigned i)
{
    GPUCC_ASSERT(i < sms.size(), "bad SM id %u", i);
    return *sms[i];
}

Stream &
Device::createStream()
{
    streams.push_back(std::make_unique<Stream>(
        *this, static_cast<unsigned>(streams.size())));
    return *streams.back();
}

KernelInstance &
Device::submit(Stream &stream, KernelLaunch launch, Tick arrivalTick)
{
    instances.push_back(std::make_unique<KernelInstance>(
        nextKernelId++, std::move(launch), stream));
    KernelInstance &inst = *instances.back();
    stream.submit(inst, arrivalTick);
    return inst;
}

void
Device::placeBlock(KernelInstance &kernel, Sm &sm)
{
    sm.reserve(kernel.config(), kernel.id());
    unsigned blockId = kernel.notePlaced();
    blocks.push_back(std::make_unique<ThreadBlock>(kernel, blockId, sm));
    ThreadBlock *b = blocks.back().get();
    Tick startTick = now() + cyclesToTicks(blockStartCycles);
    b->start(startTick);
}

void
Device::blockFinished(ThreadBlock &block)
{
    KernelInstance &kernel = block.kernel();
    block.sm().release(kernel.config(), kernel.id());
    kernel.noteBlockDone();
    if (auto *tr = traceShard();
        tr && tr->wants(sim::trace::Cat::Kernel)) {
        const BlockRecord &rec =
            kernel.blockRecords()[block.recordIndex()];
        std::uint32_t tid = 100 + rec.smId;
        tr->nameRow(tid, strfmt("sm%u blocks", rec.smId));
        tr->span(sim::trace::Cat::Kernel, tid,
                 strfmt("%s b%u", kernel.name().c_str(), block.id()),
                 rec.startTick, now(), "kernel",
                 kernel.id());
    }
    if (kernel.done()) {
        kernel.noteEnd(now());
        if (auto *tr = traceShard();
            tr && tr->wants(sim::trace::Cat::Kernel)) {
            std::uint32_t tid =
                10 + static_cast<std::uint32_t>(kernel.stream().id());
            tr->nameRow(tid, strfmt("stream%u kernels",
                                    static_cast<unsigned>(
                                        kernel.stream().id())));
            tr->span(sim::trace::Cat::Kernel, tid, kernel.name(),
                     kernel.startTick(), now(), "kernel", kernel.id());
        }
        // Section 9 mitigation: purge cache state between kernels so
        // temporal partitioning also stops state-based cache channels.
        if (mitigationCfg.flushCachesBetweenKernels)
            cmem->flushAll();
        kernel.stream().kernelDone(kernel);
    }
    blockSched->blockRetired();

    // Reclaim the block after the current event unwinds: the finishing
    // warp's coroutine frame lives inside it.
    ThreadBlock *dead = &block;
    events().schedule(now(), [this, dead] {
        std::erase_if(blocks, [dead](const std::unique_ptr<ThreadBlock> &b) {
            return b.get() == dead;
        });
    });
}

void
Device::preemptBlock(ThreadBlock &block)
{
    GPUCC_ASSERT(!block.done() && !block.cancelled(),
                 "preempting a dead block");
    KernelInstance &kernel = block.kernel();
    block.cancel(now());
    block.sm().release(kernel.config(), kernel.id());
    kernel.requeueBlock(block.id());
    blockSched->noteRequeued(kernel);
    // Re-fill after the current scheduling pass unwinds.
    events().schedule(now(), [this] { blockSched->fill(); });
}

std::vector<ThreadBlock *>
Device::liveBlocks()
{
    std::vector<ThreadBlock *> live;
    for (const auto &b : blocks) {
        if (!b->done() && !b->cancelled())
            live.push_back(b.get());
    }
    return live;
}

void
Device::runUntilIdle()
{
    queue.run();
}

void
Device::runUntilDone(const KernelInstance &kernel)
{
    while (!kernel.done()) {
        if (queue.empty()) {
            if (starved(kernel)) {
                GPUCC_FATAL("kernel '%s' is starved: its blocks fit on no "
                            "SM given current residency",
                            kernel.name().c_str());
            }
            GPUCC_FATAL("event queue drained before kernel '%s' completed",
                        kernel.name().c_str());
        }
        queue.step();
    }
}

bool
Device::starved(const KernelInstance &kernel) const
{
    if (kernel.done() || kernel.fullyPlaced())
        return false;
    return !blockSched->couldEverPlace(kernel);
}

Addr
Device::allocConst(std::size_t bytes, std::size_t align)
{
    GPUCC_ASSERT(align > 0, "alignment must be positive");
    constBrk = (constBrk + align - 1) / align * align;
    Addr base = constBrk;
    constBrk += bytes;
    return base;
}

Addr
Device::allocGlobal(std::size_t bytes, std::size_t align)
{
    GPUCC_ASSERT(align > 0, "alignment must be positive");
    globalBrk = (globalBrk + align - 1) / align * align;
    Addr base = globalBrk;
    globalBrk += bytes;
    return base;
}

} // namespace gpucc::gpu

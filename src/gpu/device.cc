#include "gpu/device.h"

#include <algorithm>

#include "common/log.h"
#include "gpu/thread_block.h"

namespace gpucc::gpu
{

Device::Device(ArchParams arch) : params(std::move(arch))
{
    cmem = std::make_unique<mem::ConstMemory>(params.constMem,
                                              params.numSms);
    gmem = std::make_unique<mem::GlobalMemory>(params.gmem);
    for (unsigned i = 0; i < params.numSms; ++i)
        sms.push_back(std::make_unique<Sm>(*this, i));
    blockSched = std::make_unique<BlockScheduler>(*this);
}

Device::~Device() = default;

Sm &
Device::sm(unsigned i)
{
    GPUCC_ASSERT(i < sms.size(), "bad SM id %u", i);
    return *sms[i];
}

Stream &
Device::createStream()
{
    streams.push_back(std::make_unique<Stream>(
        *this, static_cast<unsigned>(streams.size())));
    return *streams.back();
}

KernelInstance &
Device::submit(Stream &stream, KernelLaunch launch, Tick arrivalTick)
{
    instances.push_back(std::make_unique<KernelInstance>(
        nextKernelId++, std::move(launch), stream));
    KernelInstance &inst = *instances.back();
    stream.submit(inst, arrivalTick);
    return inst;
}

void
Device::placeBlock(KernelInstance &kernel, Sm &sm)
{
    sm.reserve(kernel.config(), kernel.id());
    unsigned blockId = kernel.notePlaced();
    blocks.push_back(std::make_unique<ThreadBlock>(kernel, blockId, sm));
    ThreadBlock *b = blocks.back().get();
    Tick startTick = now() + cyclesToTicks(blockStartCycles);
    b->start(startTick);
}

void
Device::blockFinished(ThreadBlock &block)
{
    KernelInstance &kernel = block.kernel();
    block.sm().release(kernel.config(), kernel.id());
    kernel.noteBlockDone();
    if (kernel.done()) {
        kernel.noteEnd(now());
        // Section 9 mitigation: purge cache state between kernels so
        // temporal partitioning also stops state-based cache channels.
        if (mitigationCfg.flushCachesBetweenKernels)
            cmem->flushAll();
        kernel.stream().kernelDone(kernel);
    }
    blockSched->blockRetired();

    // Reclaim the block after the current event unwinds: the finishing
    // warp's coroutine frame lives inside it.
    ThreadBlock *dead = &block;
    events().schedule(now(), [this, dead] {
        std::erase_if(blocks, [dead](const std::unique_ptr<ThreadBlock> &b) {
            return b.get() == dead;
        });
    });
}

void
Device::preemptBlock(ThreadBlock &block)
{
    GPUCC_ASSERT(!block.done() && !block.cancelled(),
                 "preempting a dead block");
    KernelInstance &kernel = block.kernel();
    block.cancel(now());
    block.sm().release(kernel.config(), kernel.id());
    kernel.requeueBlock(block.id());
    blockSched->noteRequeued(kernel);
    // Re-fill after the current scheduling pass unwinds.
    events().schedule(now(), [this] { blockSched->fill(); });
}

std::vector<ThreadBlock *>
Device::liveBlocks()
{
    std::vector<ThreadBlock *> live;
    for (const auto &b : blocks) {
        if (!b->done() && !b->cancelled())
            live.push_back(b.get());
    }
    return live;
}

void
Device::runUntilIdle()
{
    queue.run();
}

void
Device::runUntilDone(const KernelInstance &kernel)
{
    while (!kernel.done()) {
        if (queue.empty()) {
            if (starved(kernel)) {
                GPUCC_FATAL("kernel '%s' is starved: its blocks fit on no "
                            "SM given current residency",
                            kernel.name().c_str());
            }
            GPUCC_FATAL("event queue drained before kernel '%s' completed",
                        kernel.name().c_str());
        }
        queue.step();
    }
}

bool
Device::starved(const KernelInstance &kernel) const
{
    if (kernel.done() || kernel.fullyPlaced())
        return false;
    return !blockSched->couldEverPlace(kernel);
}

Addr
Device::allocConst(std::size_t bytes, std::size_t align)
{
    GPUCC_ASSERT(align > 0, "alignment must be positive");
    constBrk = (constBrk + align - 1) / align * align;
    Addr base = constBrk;
    constBrk += bytes;
    return base;
}

Addr
Device::allocGlobal(std::size_t bytes, std::size_t align)
{
    GPUCC_ASSERT(align > 0, "alignment must be positive");
    globalBrk = (globalBrk + align - 1) / align * align;
    Addr base = globalBrk;
    globalBrk += bytes;
    return base;
}

} // namespace gpucc::gpu

#include "gpu/device.h"

#include <algorithm>
#include <atomic>

#include "common/log.h"
#include "gpu/thread_block.h"

namespace gpucc::gpu
{

namespace
{

/** Process-wide ordinal for GPUCC_TRACE auto-attach labels. */
std::atomic<unsigned> traceDeviceOrdinal{0};

} // namespace

Device::Device(ArchParams arch) : params(std::move(arch))
{
    cmem = std::make_unique<mem::ConstMemory>(params.constMem,
                                              params.numSms);
    gmem = std::make_unique<mem::GlobalMemory>(params.gmem);
    for (unsigned i = 0; i < params.numSms; ++i)
        sms.push_back(std::make_unique<Sm>(*this, i));
    warpUnitsBySm.assign(params.numSms, 0);
    blockSched = std::make_unique<BlockScheduler>(*this);
    registerDeviceMetrics();
    if (auto *session = sim::trace::TraceSession::global()) {
        attachTrace(*session,
                    strfmt("device%u", traceDeviceOrdinal.fetch_add(1)));
    }
}

Device::~Device() = default;

void
Device::registerDeviceMetrics()
{
    queue.registerMetrics(registry);
    cmem->registerMetrics(registry);
    gmem->registerMetrics(registry);
    for (auto &s : sms)
        s->registerMetrics(registry);

    registry.gauge("device.ticks",
                   [this] { return static_cast<double>(queue.now()); });
    registry.gauge("kernels.launched", [this] {
        return static_cast<double>(instances.size());
    });
    registry.gauge("kernels.completed", [this] {
        std::uint64_t done = 0;
        for (const auto &k : instances)
            done += k->done() ? 1 : 0;
        return static_cast<double>(done);
    });
    registry.gauge("sched.preemptions", [this] {
        return static_cast<double>(blockSched->preemptions());
    });

    // Issue-port classes, aggregated over every scheduler of every SM.
    // Pull gauges read the ResourcePool tallies that already exist, so
    // the warp-issue hot path gains no new counter.
    struct PortClass
    {
        const char *key;
        int fu; //!< FuType index, -1 = dispatch pool
    };
    static constexpr PortClass classes[] = {
        {"dispatch", -1},
        {"sp", static_cast<int>(FuType::SP)},
        {"dpu", static_cast<int>(FuType::DPU)},
        {"sfu", static_cast<int>(FuType::SFU)},
        {"ldst", static_cast<int>(FuType::LDST)},
    };
    for (const auto &c : classes) {
        auto sum = [this, c](int what) {
            double total = 0.0;
            for (auto &s : sms) {
                for (unsigned i = 0; i < s->numSchedulers(); ++i) {
                    WarpScheduler &ws = s->scheduler(i);
                    sim::ResourcePool &pool =
                        c.fu < 0 ? ws.dispatch()
                                 : ws.port(static_cast<FuType>(c.fu));
                    total += what == 0
                                 ? static_cast<double>(pool.busyTicks())
                             : what == 1
                                 ? static_cast<double>(pool.requests())
                                 : static_cast<double>(pool.totalQueueing());
                }
            }
            return total;
        };
        registry.gauge(strfmt("fu.%s.busyTicks", c.key),
                       [sum] { return sum(0); });
        registry.gauge(strfmt("fu.%s.requests", c.key),
                       [sum] { return sum(1); });
        registry.gauge(strfmt("fu.%s.queueingTicks", c.key),
                       [sum] { return sum(2); });
    }
}

void
Device::attachTrace(sim::trace::TraceSession &session,
                    const std::string &label)
{
    trace = session.makeShard(label);
    cmem->setTraceShard(trace);
    recomputeFastPath();
}

void
Device::sampleMetricsEvery(Cycle cycles)
{
    GPUCC_ASSERT(cycles > 0, "sampling interval must be positive");
    scheduleMetricsSample(cyclesToTicks(cycles));
}

void
Device::scheduleMetricsSample(Tick period)
{
    queue.schedule(queue.now() + period, [this, period] {
        registry.snapshot(queue.now());
        // Re-arm only while other work is pending; otherwise the
        // sampler would keep the queue alive forever.
        if (!queue.empty())
            scheduleMetricsSample(period);
    });
}

Sm &
Device::sm(unsigned i)
{
    GPUCC_ASSERT(i < sms.size(), "bad SM id %u", i);
    return *sms[i];
}

Stream &
Device::createStream()
{
    streams.push_back(std::make_unique<Stream>(
        *this, static_cast<unsigned>(streams.size())));
    return *streams.back();
}

KernelInstance &
Device::submit(Stream &stream, KernelLaunch launch, Tick arrivalTick)
{
    instances.push_back(std::make_unique<KernelInstance>(
        nextKernelId++, std::move(launch), stream));
    KernelInstance &inst = *instances.back();
    stream.submit(inst, arrivalTick);
    if (defense)
        defense->noteKernelSubmitted();
    return inst;
}

void
Device::placeBlock(KernelInstance &kernel, Sm &sm)
{
    sm.reserve(kernel.config(), kernel.id());
    unsigned blockId = kernel.notePlaced();
    blocks.push_back(std::make_unique<ThreadBlock>(kernel, blockId, sm));
    ThreadBlock *b = blocks.back().get();
    Tick startTick = now() + cyclesToTicks(blockStartCycles);
    b->start(startTick);
}

void
Device::blockFinished(ThreadBlock &block)
{
    KernelInstance &kernel = block.kernel();
    block.sm().release(kernel.config(), kernel.id());
    kernel.noteBlockDone();
    if (auto *tr = traceShard();
        tr && tr->wants(sim::trace::Cat::Kernel)) {
        const BlockRecord &rec =
            kernel.blockRecords()[block.recordIndex()];
        std::uint32_t tid = 100 + rec.smId;
        tr->nameRow(tid, strfmt("sm%u blocks", rec.smId));
        tr->span(sim::trace::Cat::Kernel, tid,
                 strfmt("%s b%u", kernel.name().c_str(), block.id()),
                 rec.startTick, now(), "kernel",
                 kernel.id());
    }
    if (kernel.done()) {
        kernel.noteEnd(now());
        if (auto *tr = traceShard();
            tr && tr->wants(sim::trace::Cat::Kernel)) {
            std::uint32_t tid =
                10 + static_cast<std::uint32_t>(kernel.stream().id());
            tr->nameRow(tid, strfmt("stream%u kernels",
                                    static_cast<unsigned>(
                                        kernel.stream().id())));
            tr->span(sim::trace::Cat::Kernel, tid, kernel.name(),
                     kernel.startTick(), now(), "kernel", kernel.id());
        }
        // Section 9 mitigation: purge cache state between kernels so
        // temporal partitioning also stops state-based cache channels.
        if (mitigationCfg.flushCachesBetweenKernels)
            cmem->flushAll();
        kernel.stream().kernelDone(kernel);
    }
    blockSched->blockRetired();

    // Reclaim the block after the current event unwinds: the finishing
    // warp's coroutine frame lives inside it. Pure reclamation commutes
    // with anything, so it must not block the elision fast path.
    ThreadBlock *dead = &block;
    noteNeutralScheduled();
    events().schedule(now(), [this, dead] {
        noteNeutralFired();
        std::erase_if(blocks, [dead](const std::unique_ptr<ThreadBlock> &b) {
            return b.get() == dead;
        });
    });
}

void
Device::preemptBlock(ThreadBlock &block)
{
    GPUCC_ASSERT(!block.done() && !block.cancelled(),
                 "preempting a dead block");
    KernelInstance &kernel = block.kernel();
    block.cancel(now());
    block.sm().release(kernel.config(), kernel.id());
    kernel.requeueBlock(block.id());
    blockSched->noteRequeued(kernel);
    // Re-fill after the current scheduling pass unwinds.
    events().schedule(now(), [this] { blockSched->fill(); });
}

std::vector<ThreadBlock *>
Device::liveBlocks()
{
    std::vector<ThreadBlock *> live;
    for (const auto &b : blocks) {
        if (!b->done() && !b->cancelled())
            live.push_back(b.get());
    }
    return live;
}

void
Device::runUntilIdle()
{
    queue.run();
}

void
Device::runUntilDone(const KernelInstance &kernel)
{
    while (!kernel.done()) {
        if (queue.empty()) {
            if (starved(kernel)) {
                GPUCC_FATAL("kernel '%s' is starved: its blocks fit on no "
                            "SM given current residency",
                            kernel.name().c_str());
            }
            GPUCC_FATAL("event queue drained before kernel '%s' completed",
                        kernel.name().c_str());
        }
        queue.step();
    }
}

bool
Device::starved(const KernelInstance &kernel) const
{
    if (kernel.done() || kernel.fullyPlaced())
        return false;
    return !blockSched->couldEverPlace(kernel);
}

Addr
Device::allocConst(std::size_t bytes, std::size_t align)
{
    GPUCC_ASSERT(align > 0, "alignment must be positive");
    constBrk = (constBrk + align - 1) / align * align;
    Addr base = constBrk;
    constBrk += bytes;
    return base;
}

Addr
Device::allocGlobal(std::size_t bytes, std::size_t align)
{
    GPUCC_ASSERT(align > 0, "alignment must be positive");
    globalBrk = (globalBrk + align - 1) / align * align;
    Addr base = globalBrk;
    globalBrk += bytes;
    return base;
}

Stream &
Device::stream(unsigned i)
{
    GPUCC_ASSERT(i < streams.size(), "bad stream id %u", i);
    return *streams[i];
}

/**
 * Everything a fork needs to reproduce the source device at the
 * snapshot point. Kernel copies keep their original stream pointer but
 * it is never dereferenced; fork() re-clones them onto the new device's
 * stream of the recorded id.
 */
struct DeviceSnapshot::Payload
{
    ArchParams arch;
    sim::EventQueue::IdleState queue;
    mem::ConstMemory::State cmem;
    mem::GlobalMemory::State gmem;
    std::vector<Sm::State> sms;
    BlockScheduler::State blockSched;
    unsigned numStreams = 0;
    std::vector<std::unique_ptr<KernelInstance>> kernels;
    std::vector<unsigned> kernelStreamIds;
    std::uint64_t nextKernelId = 0;
    Addr constBrk = 0;
    Addr globalBrk = 0;
    MitigationConfig mitigations;
    std::string rngState;
    bool elisionOn = true;
};

bool
Device::quiescent() const
{
    if (!queue.empty() || !blocks.empty())
        return false;
    if (warpEntries != 0 || neutralEntries != 0)
        return false;
    for (std::uint32_t units : warpUnitsBySm) {
        if (units != 0)
            return false;
    }
    for (const auto &s : streams) {
        if (!s->idle())
            return false;
    }
    return true;
}

DeviceSnapshot
Device::snapshot() const
{
    GPUCC_ASSERT(quiescent(),
                 "snapshot() requires a quiescent device (run the event "
                 "queue dry and let all kernels complete first)");
    auto p = std::make_shared<DeviceSnapshot::Payload>();
    p->arch = params;
    p->queue = queue.idleState();
    p->cmem = cmem->captureState();
    p->gmem = gmem->captureState();
    p->sms.reserve(sms.size());
    for (const auto &s : sms)
        p->sms.push_back(s->captureState());
    p->blockSched = blockSched->captureState();
    p->numStreams = static_cast<unsigned>(streams.size());
    p->kernels.reserve(instances.size());
    p->kernelStreamIds.reserve(instances.size());
    for (const auto &k : instances) {
        p->kernels.push_back(std::make_unique<KernelInstance>(*k));
        p->kernelStreamIds.push_back(k->stream().id());
    }
    p->nextKernelId = nextKernelId;
    p->constBrk = constBrk;
    p->globalBrk = globalBrk;
    p->mitigations = mitigationCfg;
    p->rngState = rng.saveState();
    p->elisionOn = elisionOn;

    DeviceSnapshot snap;
    snap.payload = std::move(p);
    return snap;
}

std::unique_ptr<Device>
Device::fork(const DeviceSnapshot &snap)
{
    GPUCC_ASSERT(snap.valid(), "fork() from an empty snapshot");
    const DeviceSnapshot::Payload &p = *snap.payload;
    auto dev = std::make_unique<Device>(p.arch);

    dev->queue.restoreIdleState(p.queue);
    dev->cmem->restoreState(p.cmem);
    dev->gmem->restoreState(p.gmem);
    GPUCC_ASSERT(p.sms.size() == dev->sms.size(),
                 "fork(): SM count mismatch");
    for (std::size_t i = 0; i < dev->sms.size(); ++i)
        dev->sms[i]->restoreState(p.sms[i]);
    dev->blockSched->restoreState(p.blockSched);
    for (unsigned i = 0; i < p.numStreams; ++i)
        dev->createStream();
    for (std::size_t i = 0; i < p.kernels.size(); ++i) {
        dev->instances.push_back(std::make_unique<KernelInstance>(
            *p.kernels[i], dev->stream(p.kernelStreamIds[i])));
    }
    dev->nextKernelId = p.nextKernelId;
    dev->constBrk = p.constBrk;
    dev->globalBrk = p.globalBrk;
    dev->rng.restoreState(p.rngState);
    dev->elisionOn = p.elisionOn;
    dev->setMitigations(p.mitigations);
    return dev;
}

} // namespace gpucc::gpu

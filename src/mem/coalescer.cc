#include "mem/coalescer.h"

#include "common/log.h"

namespace gpucc::mem
{

Coalescer::Coalescer(std::size_t segmentBytes) : segBytes(segmentBytes)
{
    GPUCC_ASSERT(segBytes > 0, "segment size must be positive");
}

std::vector<Transaction>
Coalescer::coalesce(const std::vector<Addr> &laneAddrs) const
{
    std::vector<Transaction> txns;
    for (Addr a : laneAddrs) {
        Addr base = a - (a % segBytes);
        bool found = false;
        for (auto &t : txns) {
            if (t.segmentBase == base) {
                ++t.laneOps;
                found = true;
                break;
            }
        }
        if (!found)
            txns.push_back(Transaction{base, 1});
    }
    return txns;
}

} // namespace gpucc::mem

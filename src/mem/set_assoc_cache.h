/**
 * @file
 * Stateful set-associative cache with true-LRU replacement.
 *
 * The covert channels rely on real eviction behaviour (prime one set,
 * observe misses), so the cache keeps actual tags and LRU state rather
 * than a probabilistic model.
 *
 * State is laid out structure-of-arrays: tags, use clocks, valid bits
 * and owners live in parallel flat arrays indexed by set * ways + way.
 * The hit scan then walks one contiguous run of 8-byte tags (invalid
 * ways hold a sentinel no real tag can equal, so the scan needs no
 * validity test), and the victim scan is a plain arg-min over the
 * use-clock run (invalid ways hold use clock 0, which both makes them
 * win the arg-min and preserves the "first invalid way" choice, since
 * the scan only replaces on strictly-older). Per-line AoS nodes cost a
 * cache line per way probed; these runs cost one or two for a whole
 * set.
 */

#ifndef GPUCC_MEM_SET_ASSOC_CACHE_H
#define GPUCC_MEM_SET_ASSOC_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/log.h"
#include "mem/cache_geometry.h"

namespace gpucc::mem
{

/** Outcome of a cache access. */
struct CacheAccessResult
{
    bool hit = false;          //!< tag matched
    bool evicted = false;      //!< a valid victim was replaced
    Addr victimLine = 0;       //!< line address of the victim (if any)
    int victimOwner = -1;      //!< owner id the victim was installed with
};

/** Tag-only set-associative LRU cache (SoA state). */
class SetAssocCache
{
  public:
    /**
     * @param name Debug name.
     * @param geom Geometry (validated).
     */
    SetAssocCache(std::string name, const CacheGeometry &geom);

    /**
     * Access @p addr: on a hit update LRU, on a miss allocate the line
     * (evicting true LRU).
     *
     * @param owner Identity installed with the line on allocation (the
     *        accessing application); reported back as the victim's
     *        owner on later evictions — the raw signal contention
     *        detectors consume.
     */
    CacheAccessResult
    access(Addr addr, int owner = -1)
    {
        return accessInWays(addr, 0, geom.ways, owner);
    }

    /**
     * Way-partitioned access (Section 9 mitigation): hits may match any
     * way, but on a miss the allocation victim is chosen only from ways
     * [@p wayBegin, @p wayEnd), so this requester can never evict lines
     * outside its partition.
     */
    CacheAccessResult
    accessInWays(Addr addr, unsigned wayBegin, unsigned wayEnd,
                 int owner = -1)
    {
        GPUCC_ASSERT(wayBegin < wayEnd && wayEnd <= geom.ways,
                     "%s: bad way range [%u, %u)", name.c_str(), wayBegin,
                     wayEnd);
        CacheAccessResult res;
        const std::size_t set = geom.setOf(addr);
        const std::size_t base = set * geom.ways;
        const Addr tag = geom.tagOf(addr);
        ++useClock;

        // Hit path: a hit may match any way, partitioned or not.
        // Invalid ways hold invalidTag, so no validity test is needed.
        for (unsigned w = 0; w < geom.ways; ++w) {
            if (tags[base + w] == tag) {
                lastUse[base + w] = useClock;
                ++hitCount;
                res.hit = true;
                return res;
            }
        }

        // Miss: allocate into an invalid way or the true-LRU victim,
        // within the requester's way partition. Invalid ways carry use
        // clock 0; strictly-older replacement keeps the first of them.
        ++missCount;
        unsigned victim = wayBegin;
        std::uint64_t oldest = lastUse[base + wayBegin];
        for (unsigned w = wayBegin + 1; w < wayEnd; ++w) {
            if (lastUse[base + w] < oldest) {
                oldest = lastUse[base + w];
                victim = w;
            }
        }
        const std::size_t vi = base + victim;
        if (valid[vi]) {
            res.evicted = true;
            res.victimLine =
                (tags[vi] * geom.numSets() + set) * geom.lineBytes;
            res.victimOwner = owners[vi];
        }
        valid[vi] = 1;
        tags[vi] = tag;
        lastUse[vi] = useClock;
        owners[vi] = owner;
        return res;
    }

    /** Look up @p addr without changing any state. */
    bool
    probe(Addr addr) const
    {
        const std::size_t base = geom.setOf(addr) * geom.ways;
        const Addr tag = geom.tagOf(addr);
        for (unsigned w = 0; w < geom.ways; ++w) {
            if (tags[base + w] == tag)
                return true;
        }
        return false;
    }

    /** Invalidate every line. */
    void flush();

    /** Invalidate one line if present. @return true if it was present. */
    bool invalidate(Addr addr);

    /** Geometry accessor. */
    const CacheGeometry &geometry() const { return geom; }

    /** Hits observed so far. */
    std::uint64_t hits() const { return hitCount; }

    /** Misses observed so far. */
    std::uint64_t misses() const { return missCount; }

    /** Number of valid lines currently resident in set @p set. */
    unsigned validLinesInSet(std::size_t set) const;

    /** Read-only view of one tag-array entry (verification digests). */
    struct LineView
    {
        bool valid = false;
        Addr tag = 0;     //!< line address of the cached line
        int owner = -1;   //!< application that installed it
        unsigned lruRank = 0; //!< 0 = most recent among valid set lines
    };

    /**
     * Snapshot of the tag/LRU state of set @p set, indexed by way. The
     * LRU ordering is reported as a per-set rank rather than the raw
     * use clock so two caches that saw the same access *pattern* (but
     * different absolute access counts) still compare equal.
     */
    std::vector<LineView> setState(std::size_t set) const;

    /** Complete mutable state, for device snapshot/fork. */
    struct State
    {
        std::vector<Addr> tags;
        std::vector<std::uint64_t> lastUse;
        std::vector<std::uint8_t> valid;
        std::vector<std::int32_t> owners;
        std::uint64_t useClock = 0;
        std::uint64_t hitCount = 0;
        std::uint64_t missCount = 0;
    };

    /** Capture the full array state (geometry is not included). */
    State captureState() const;

    /** Restore state captured from a same-geometry cache. */
    void restoreState(const State &s);

  private:
    /**
     * Tag stored in invalid ways. Real tags are line addresses shifted
     * down, far below this, so the hit scan can skip the valid test.
     */
    static constexpr Addr invalidTag = ~Addr(0);

    std::string name;
    CacheGeometry geom;
    std::vector<Addr> tags;               //!< invalidTag when invalid
    std::vector<std::uint64_t> lastUse;   //!< 0 when invalid
    std::vector<std::uint8_t> valid;
    std::vector<std::int32_t> owners;
    std::uint64_t useClock = 0;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
};

} // namespace gpucc::mem

#endif // GPUCC_MEM_SET_ASSOC_CACHE_H

/**
 * @file
 * Stateful set-associative cache with true-LRU replacement.
 *
 * The covert channels rely on real eviction behaviour (prime one set,
 * observe misses), so the cache keeps actual tags and LRU state rather
 * than a probabilistic model.
 */

#ifndef GPUCC_MEM_SET_ASSOC_CACHE_H
#define GPUCC_MEM_SET_ASSOC_CACHE_H

#include <cstdint>
#include <string>
#include <vector>

#include "mem/cache_geometry.h"

namespace gpucc::mem
{

/** Outcome of a cache access. */
struct CacheAccessResult
{
    bool hit = false;          //!< tag matched
    bool evicted = false;      //!< a valid victim was replaced
    Addr victimLine = 0;       //!< line address of the victim (if any)
    int victimOwner = -1;      //!< owner id the victim was installed with
};

/** Tag-only set-associative LRU cache. */
class SetAssocCache
{
  public:
    /**
     * @param name Debug name.
     * @param geom Geometry (validated).
     */
    SetAssocCache(std::string name, const CacheGeometry &geom);

    /**
     * Access @p addr: on a hit update LRU, on a miss allocate the line
     * (evicting true LRU).
     *
     * @param owner Identity installed with the line on allocation (the
     *        accessing application); reported back as the victim's
     *        owner on later evictions — the raw signal contention
     *        detectors consume.
     */
    CacheAccessResult access(Addr addr, int owner = -1);

    /**
     * Way-partitioned access (Section 9 mitigation): hits may match any
     * way, but on a miss the allocation victim is chosen only from ways
     * [@p wayBegin, @p wayEnd), so this requester can never evict lines
     * outside its partition.
     */
    CacheAccessResult accessInWays(Addr addr, unsigned wayBegin,
                                   unsigned wayEnd, int owner = -1);

    /** Look up @p addr without changing any state. */
    bool probe(Addr addr) const;

    /** Invalidate every line. */
    void flush();

    /** Invalidate one line if present. @return true if it was present. */
    bool invalidate(Addr addr);

    /** Geometry accessor. */
    const CacheGeometry &geometry() const { return geom; }

    /** Hits observed so far. */
    std::uint64_t hits() const { return hitCount; }

    /** Misses observed so far. */
    std::uint64_t misses() const { return missCount; }

    /** Number of valid lines currently resident in set @p set. */
    unsigned validLinesInSet(std::size_t set) const;

    /** Read-only view of one tag-array entry (verification digests). */
    struct LineView
    {
        bool valid = false;
        Addr tag = 0;     //!< line address of the cached line
        int owner = -1;   //!< application that installed it
        unsigned lruRank = 0; //!< 0 = most recent among valid set lines
    };

    /**
     * Snapshot of the tag/LRU state of set @p set, indexed by way. The
     * LRU ordering is reported as a per-set rank rather than the raw
     * use clock so two caches that saw the same access *pattern* (but
     * different absolute access counts) still compare equal.
     */
    std::vector<LineView> setState(std::size_t set) const;

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
        int owner = -1;
    };

    Line &lineAt(std::size_t set, unsigned way);
    const Line &lineAt(std::size_t set, unsigned way) const;

    std::string name;
    CacheGeometry geom;
    std::vector<Line> lines; //!< numSets * ways, row-major by set
    std::uint64_t useClock = 0;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
};

} // namespace gpucc::mem

#endif // GPUCC_MEM_SET_ASSOC_CACHE_H

#include "mem/const_memory.h"

#include "common/log.h"
#include "common/metrics/metrics.h"
#include "sim/trace/trace.h"

namespace gpucc::mem
{

ConstMemory::ConstMemory(const ConstMemoryParams &params, unsigned numSms)
    : p(params)
{
    p.l1.validate("const L1");
    p.l2.validate("const L2");
    for (unsigned i = 0; i < numSms; ++i) {
        l1s.push_back(std::make_unique<SetAssocCache>(
            strfmt("constL1.sm%u", i), p.l1));
        l1Ports.push_back(std::make_unique<sim::ResourcePool>(
            strfmt("constL1port.sm%u", i), p.l1Ports));
    }
    l2 = std::make_unique<SetAssocCache>("constL2", p.l2);
    l2Port = std::make_unique<sim::ResourcePool>("constL2port", p.l2Ports);
}

namespace
{

/** Half-the-ways partition bounds for an application domain. */
void
partitionWays(unsigned ways, int domain, unsigned &begin, unsigned &end)
{
    unsigned half = ways / 2;
    if (domain <= 0) {
        begin = 0;
        end = half > 0 ? half : 1;
    } else {
        begin = half;
        end = ways;
    }
}

} // namespace

ConstAccessResult
ConstMemory::access(unsigned smId, Addr addr, Tick now, int partitionDomain,
                    int accessorApp)
{
    GPUCC_ASSERT(smId < l1s.size(), "bad smId %u", smId);
    ConstAccessResult res;

    auto r1 = l1Ports[smId]->acquire(now, cyclesToTicks(p.l1PortOccCycles));
    Tick t1 = r1.serviceStart;
    CacheAccessResult a1;
    if (partitionDomain >= 0) {
        unsigned wb, we;
        partitionWays(p.l1.ways, partitionDomain, wb, we);
        a1 = l1s[smId]->accessInWays(addr, wb, we, accessorApp);
    } else {
        a1 = l1s[smId]->access(addr, accessorApp);
    }
    if (tracing && a1.evicted) {
        record(EvictionEvent{now, smId,
                             static_cast<unsigned>(p.l1.setOf(addr)),
                             accessorApp, a1.victimOwner});
    }
    auto *tr = traceHook;
    bool traceCache = tr != nullptr && tr->wants(sim::trace::Cat::Cache);
    if (traceCache) {
        std::uint32_t tid = 3000 + smId;
        tr->nameRow(tid, strfmt("sm%u constL1", smId));
        if (a1.evicted) {
            tr->instant(sim::trace::Cat::Cache, tid, "l1-evict", now,
                        "set",
                        static_cast<std::uint64_t>(p.l1.setOf(addr)));
        }
        tr->instant(sim::trace::Cat::Cache, tid,
                    a1.hit ? "l1-hit" : "l1-miss", now, "set",
                    static_cast<std::uint64_t>(p.l1.setOf(addr)));
    }
    if (a1.hit) {
        res.l1Hit = true;
        res.completion = t1 + cyclesToTicks(p.l1HitCycles);
        return res;
    }

    // L1 miss: forward to the shared L2 after the tag check.
    auto r2 = l2Port->acquire(t1 + cyclesToTicks(p.l1MissFwdCycles),
                              cyclesToTicks(p.l2PortOccCycles));
    Tick t2 = r2.serviceStart;
    CacheAccessResult a2;
    if (partitionDomain >= 0) {
        unsigned wb, we;
        partitionWays(p.l2.ways, partitionDomain, wb, we);
        a2 = l2->accessInWays(addr, wb, we, accessorApp);
    } else {
        a2 = l2->access(addr, accessorApp);
    }
    if (tracing && a2.evicted) {
        record(EvictionEvent{now, ~0u,
                             static_cast<unsigned>(p.l2.setOf(addr)),
                             accessorApp, a2.victimOwner});
    }
    if (traceCache) {
        constexpr std::uint32_t l2Tid = 3999;
        tr->nameRow(l2Tid, "constL2");
        if (a2.evicted) {
            tr->instant(sim::trace::Cat::Cache, l2Tid, "l2-evict", now,
                        "set",
                        static_cast<std::uint64_t>(p.l2.setOf(addr)));
        }
        tr->instant(sim::trace::Cat::Cache, l2Tid,
                    a2.hit ? "l2-hit" : "l2-miss", now, "set",
                    static_cast<std::uint64_t>(p.l2.setOf(addr)));
    }
    if (a2.hit) {
        res.l2Hit = true;
        // Total observed latency targets l2HitCycles from the L2 access
        // point; the queueing before t2 adds on top, which is exactly the
        // L2-port contention the multi-set channel saturates.
        res.completion = t2 + cyclesToTicks(p.l2HitCycles -
                                            p.l1MissFwdCycles);
    } else {
        res.completion = t2 + cyclesToTicks(p.memCycles -
                                            p.l1MissFwdCycles);
    }
    return res;
}

const SetAssocCache &
ConstMemory::l1Cache(unsigned smId) const
{
    GPUCC_ASSERT(smId < l1s.size(), "bad smId %u", smId);
    return *l1s[smId];
}

void
ConstMemory::record(const EvictionEvent &e)
{
    // Bounded trace: a hardware detector has finite buffering; keep the
    // most recent window.
    constexpr std::size_t cap = 400000;
    if (trace.size() >= cap)
        trace.erase(trace.begin(), trace.begin() + cap / 4);
    trace.push_back(e);
}

void
ConstMemory::registerMetrics(metrics::Registry &reg)
{
    // Hits/misses live in the SetAssocCaches already; the gauges just
    // sum them on demand, so access() gains no extra counter.
    reg.gauge("cache.constL1.hits", [this] {
        double total = 0.0;
        for (const auto &c : l1s)
            total += static_cast<double>(c->hits());
        return total;
    });
    reg.gauge("cache.constL1.misses", [this] {
        double total = 0.0;
        for (const auto &c : l1s)
            total += static_cast<double>(c->misses());
        return total;
    });
    reg.gauge("cache.constL2.hits",
              [this] { return static_cast<double>(l2->hits()); });
    reg.gauge("cache.constL2.misses",
              [this] { return static_cast<double>(l2->misses()); });
    reg.gauge("cache.constL2.portQueueingTicks", [this] {
        return static_cast<double>(l2Port->totalQueueing());
    });
}

void
ConstMemory::flushAll()
{
    for (auto &c : l1s)
        c->flush();
    l2->flush();
}

ConstMemory::State
ConstMemory::captureState() const
{
    State s;
    s.l1s.reserve(l1s.size());
    for (const auto &c : l1s)
        s.l1s.push_back(c->captureState());
    s.l2 = l2->captureState();
    s.l1Ports.reserve(l1Ports.size());
    for (const auto &port : l1Ports)
        s.l1Ports.push_back(port->captureState());
    s.l2Port = l2Port->captureState();
    s.tracing = tracing;
    return s;
}

void
ConstMemory::restoreState(const State &s)
{
    GPUCC_ASSERT(s.l1s.size() == l1s.size() &&
                     s.l1Ports.size() == l1Ports.size(),
                 "const-memory state SM count mismatch");
    for (std::size_t i = 0; i < l1s.size(); ++i)
        l1s[i]->restoreState(s.l1s[i]);
    l2->restoreState(s.l2);
    for (std::size_t i = 0; i < l1Ports.size(); ++i)
        l1Ports[i]->restoreState(s.l1Ports[i]);
    l2Port->restoreState(s.l2Port);
    tracing = s.tracing;
    trace.clear();
}

} // namespace gpucc::mem

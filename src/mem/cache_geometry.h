/**
 * @file
 * Cache geometry descriptor: size / line / associativity and the derived
 * address decomposition. Matches the parameters the paper reverse
 * engineers with the Wong et al. microbenchmark (Section 4.1).
 */

#ifndef GPUCC_MEM_CACHE_GEOMETRY_H
#define GPUCC_MEM_CACHE_GEOMETRY_H

#include <cstddef>

#include "common/log.h"
#include "common/types.h"

namespace gpucc::mem
{

/** Static geometry of a set-associative cache. */
struct CacheGeometry
{
    std::size_t sizeBytes = 0; //!< total capacity
    std::size_t lineBytes = 0; //!< line (block) size
    unsigned ways = 0;         //!< associativity

    /** Number of sets. */
    std::size_t
    numSets() const
    {
        return sizeBytes / (lineBytes * ways);
    }

    /** Set index of @p addr. */
    std::size_t
    setOf(Addr addr) const
    {
        return (addr / lineBytes) % numSets();
    }

    /** Tag of @p addr (line address above the index bits). */
    Addr
    tagOf(Addr addr) const
    {
        return (addr / lineBytes) / numSets();
    }

    /** Line-aligned base address of @p addr. */
    Addr
    lineAlign(Addr addr) const
    {
        return addr - (addr % lineBytes);
    }

    /** Sanity-check invariants (power-of-two-free model is allowed). */
    void
    validate(const char *name) const
    {
        GPUCC_ASSERT(sizeBytes > 0 && lineBytes > 0 && ways > 0,
                     "%s: empty geometry", name);
        GPUCC_ASSERT(sizeBytes % (lineBytes * ways) == 0,
                     "%s: size must be a multiple of line*ways", name);
    }
};

} // namespace gpucc::mem

#endif // GPUCC_MEM_CACHE_GEOMETRY_H

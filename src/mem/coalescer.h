/**
 * @file
 * Memory access coalescer.
 *
 * Groups the 32 per-lane addresses of a warp memory instruction into
 * memory-segment transactions, exactly the behaviour the paper leans on
 * in Section 6: consecutive small accesses land in few segments but
 * serialize at the per-line atomic units, while strided accesses spread
 * across segments and partitions.
 */

#ifndef GPUCC_MEM_COALESCER_H
#define GPUCC_MEM_COALESCER_H

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace gpucc::mem
{

/** One coalesced transaction: a segment plus how many lane ops hit it. */
struct Transaction
{
    Addr segmentBase = 0; //!< segment-aligned base address
    unsigned laneOps = 0; //!< number of lane operations in this segment
};

/** Stateless coalescing helper. */
class Coalescer
{
  public:
    /** @param segmentBytes Memory segment (transaction) size. */
    explicit Coalescer(std::size_t segmentBytes);

    /**
     * Coalesce one warp's lane addresses.
     * @param laneAddrs Per-lane byte addresses (any count <= warpSize).
     * @return transactions in first-touch order.
     */
    std::vector<Transaction> coalesce(
        const std::vector<Addr> &laneAddrs) const;

    /** Segment size accessor. */
    std::size_t segmentBytes() const { return segBytes; }

  private:
    std::size_t segBytes;
};

} // namespace gpucc::mem

#endif // GPUCC_MEM_COALESCER_H

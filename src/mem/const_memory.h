/**
 * @file
 * Constant-memory hierarchy: per-SM L1 constant caches backed by a
 * device-wide L2 constant cache backed by device memory.
 *
 * This is the structure the paper attacks in Section 4. Latencies are
 * "effective" load-to-use latencies calibrated against the paper's
 * measurements (L1 hit ~49 cycles, L1-miss/L2-hit ~112 cycles on the
 * Kepler K40C). Ports are ResourcePools so concurrent probes from many
 * warps queue — the source of the sub-linear multi-set speedups the
 * paper reports in Section 7.1.
 */

#ifndef GPUCC_MEM_CONST_MEMORY_H
#define GPUCC_MEM_CONST_MEMORY_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "mem/set_assoc_cache.h"
#include "sim/resource_pool.h"

namespace gpucc::metrics
{
class Registry;
} // namespace gpucc::metrics

namespace gpucc::sim::trace
{
class Shard;
} // namespace gpucc::sim::trace

namespace gpucc::mem
{

/** Timing/geometry parameters of the constant hierarchy. */
struct ConstMemoryParams
{
    CacheGeometry l1;            //!< per-SM L1 constant cache
    CacheGeometry l2;            //!< shared L2 constant cache
    Cycle l1HitCycles = 46;      //!< load-to-use latency on an L1 hit
    Cycle l2HitCycles = 106;     //!< total latency on L1 miss / L2 hit
    Cycle memCycles = 248;       //!< total latency on L2 miss
    Cycle l1MissFwdCycles = 8;   //!< L1 tag-check time before L2 request
    Cycle l1PortOccCycles = 4;   //!< L1 port occupancy per access
    Cycle l2PortOccCycles = 2;   //!< L2 port occupancy per access
    unsigned l1Ports = 1;        //!< ports per SM L1
    unsigned l2Ports = 8;        //!< banks/ports on the shared L2
};

/** Result of one constant-memory access. */
struct ConstAccessResult
{
    Tick completion = 0; //!< tick the value is available to the warp
    bool l1Hit = false;
    bool l2Hit = false;  //!< only meaningful when !l1Hit
};

/** One recorded eviction (input to contention detectors, Section 9). */
struct EvictionEvent
{
    Tick when = 0;        //!< issue tick of the evicting access
    unsigned smId = 0;    //!< SM whose L1 evicted (L2 events use ~0u)
    unsigned set = 0;     //!< cache set index
    int byApp = -1;       //!< application that installed the new line
    int victimApp = -1;   //!< application that owned the evicted line
};

/** Two-level constant cache hierarchy for one device. */
class ConstMemory
{
  public:
    /**
     * @param params Geometry and latencies.
     * @param numSms Number of SMs (one L1 per SM).
     */
    ConstMemory(const ConstMemoryParams &params, unsigned numSms);

    /**
     * Perform a (broadcast) constant load from SM @p smId.
     *
     * @param smId Issuing SM.
     * @param addr Constant-space address.
     * @param now Issue tick.
     * @param partitionDomain With way partitioning enabled (Section 9
     *        mitigation), the requesting application's domain (0 or 1);
     *        pass -1 for unpartitioned access.
     * @param accessorApp Application identity recorded with the line
     *        (feeds the eviction trace when tracing is enabled).
     */
    ConstAccessResult access(unsigned smId, Addr addr, Tick now,
                             int partitionDomain = -1,
                             int accessorApp = -1);

    /** Enable/disable eviction tracing (Section 9 detection). */
    void setEvictionTracing(bool on) { tracing = on; }

    /** @return true while eviction tracing is active. */
    bool evictionTracing() const { return tracing; }

    /** Recorded evictions (bounded; oldest dropped beyond the cap). */
    const std::vector<EvictionEvent> &evictionTrace() const
    {
        return trace;
    }

    /** Discard the recorded trace. */
    void clearEvictionTrace() { trace.clear(); }

    /** L1 cache of SM @p smId (tests/characterization inspect state). */
    const SetAssocCache &l1Cache(unsigned smId) const;

    /** Shared L2 cache. */
    const SetAssocCache &l2Cache() const { return *l2; }

    /** Invalidate all cached state (between experiments). */
    void flushAll();

    /** Parameter accessor. */
    const ConstMemoryParams &params() const { return p; }

    /** Expose aggregate hit/miss gauges in @p reg (Device calls once). */
    void registerMetrics(metrics::Registry &reg);

    /** Attach/detach the trace shard (Device::attachTrace only). */
    void setTraceShard(sim::trace::Shard *shard) { traceHook = shard; }

    /**
     * Complete timing-relevant state, for device snapshot/fork: every
     * cache array plus every port timeline. The eviction trace and the
     * trace hook are observability, not architecture — a fork starts
     * with an empty trace and re-attaches its own instruments — but the
     * tracing *enable* flag is configuration and is carried over.
     */
    struct State
    {
        std::vector<SetAssocCache::State> l1s;
        SetAssocCache::State l2;
        std::vector<sim::ResourcePool::State> l1Ports;
        sim::ResourcePool::State l2Port;
        bool tracing = false;
    };

    /** Capture the full state (geometry/latency params not included). */
    State captureState() const;

    /** Restore state captured from a same-parameter hierarchy. */
    void restoreState(const State &s);

  private:
    /** Append to the trace, bounded. */
    void record(const EvictionEvent &e);

    ConstMemoryParams p;
    std::vector<std::unique_ptr<SetAssocCache>> l1s;
    std::vector<std::unique_ptr<sim::ResourcePool>> l1Ports;
    std::unique_ptr<SetAssocCache> l2;
    std::unique_ptr<sim::ResourcePool> l2Port;
    bool tracing = false;
    std::vector<EvictionEvent> trace;
    sim::trace::Shard *traceHook = nullptr;
};

} // namespace gpucc::mem

#endif // GPUCC_MEM_CONST_MEMORY_H

#include "mem/global_memory.h"

#include <algorithm>

#include "common/log.h"
#include "common/metrics/metrics.h"

namespace gpucc::mem
{

GlobalMemory::GlobalMemory(const GlobalMemoryParams &params)
    : p(params), coalescer(params.segmentBytes),
      words(std::make_shared<std::unordered_map<Addr, std::uint64_t>>())
{
    GPUCC_ASSERT(p.numPartitions >= 1, "need at least one partition");
    for (unsigned i = 0; i < p.numPartitions; ++i) {
        atomicUnits.push_back(std::make_unique<sim::ResourcePool>(
            strfmt("atomic.p%u", i), p.atomicUnitsPerPartition));
        dataPorts.push_back(std::make_unique<sim::ResourcePool>(
            strfmt("gmemport.p%u", i), p.dataPortsPerPartition));
    }
}

unsigned
GlobalMemory::partitionOf(Addr addr) const
{
    return static_cast<unsigned>((addr / p.interleaveBytes) %
                                 p.numPartitions);
}

Tick
GlobalMemory::atomicAdd(const std::vector<Addr> &laneAddrs,
                        std::uint64_t value, Tick now,
                        std::vector<std::uint64_t> *oldValues)
{
    if (oldValues) {
        oldValues->clear();
        oldValues->reserve(laneAddrs.size());
    }
    // Functional update first (lane order defines the RMW order).
    auto &store = ensureOwnWords();
    for (Addr a : laneAddrs) {
        std::uint64_t &w = store[a];
        if (oldValues)
            oldValues->push_back(w);
        w += value;
    }

    // Timing: lane ops within one segment serialize at the owning
    // partition's atomic unit; distinct segments proceed in parallel
    // across partitions but each pays a fixed per-transaction overhead,
    // which is what makes un-coalesced atomics (32 transactions per
    // warp instruction) the slowest pattern (Figure 10, scenario 3).
    Tick done = now;
    for (const Transaction &t : coalescer.coalesce(laneAddrs)) {
        unsigned part = partitionOf(t.segmentBase);
        Tick occ = cyclesToTicks(p.atomicTxnOverheadCycles) +
                   cyclesToTicks(p.atomicOccCycles) * t.laneOps;
        auto r = atomicUnits[part]->acquire(now, occ);
        done = std::max(done,
                        r.serviceEnd + cyclesToTicks(p.atomicLatencyCycles));
    }
    return done;
}

Tick
GlobalMemory::load(const std::vector<Addr> &laneAddrs, Tick now)
{
    Tick done = now;
    for (const Transaction &t : coalescer.coalesce(laneAddrs)) {
        unsigned part = partitionOf(t.segmentBase);
        auto r = dataPorts[part]->acquire(now,
                                          cyclesToTicks(p.txnOccCycles));
        done = std::max(done,
                        r.serviceEnd + cyclesToTicks(p.loadLatencyCycles));
    }
    return done;
}

Tick
GlobalMemory::store(const std::vector<Addr> &laneAddrs, Tick now)
{
    // Stores complete (from the warp's perspective) once the transaction
    // is accepted by the partition port; no round trip is observed.
    Tick done = now;
    for (const Transaction &t : coalescer.coalesce(laneAddrs)) {
        unsigned part = partitionOf(t.segmentBase);
        auto r = dataPorts[part]->acquire(now,
                                          cyclesToTicks(p.txnOccCycles));
        done = std::max(done, r.serviceEnd);
    }
    return done;
}

std::uint64_t
GlobalMemory::peek(Addr addr) const
{
    auto it = words->find(addr);
    return it == words->end() ? 0 : it->second;
}

void
GlobalMemory::poke(Addr addr, std::uint64_t value)
{
    ensureOwnWords()[addr] = value;
}

Tick
GlobalMemory::atomicBusyTicks() const
{
    Tick total = 0;
    for (const auto &u : atomicUnits)
        total += u->busyTicks();
    return total;
}

std::vector<std::pair<Addr, std::uint64_t>>
GlobalMemory::wordsSnapshot() const
{
    std::vector<std::pair<Addr, std::uint64_t>> out(words->begin(),
                                                    words->end());
    std::sort(out.begin(), out.end());
    return out;
}

GlobalMemory::State
GlobalMemory::captureState() const
{
    State s;
    s.words = words; // CoW: shared until either side writes
    s.atomicUnits.reserve(atomicUnits.size());
    for (const auto &u : atomicUnits)
        s.atomicUnits.push_back(u->captureState());
    s.dataPorts.reserve(dataPorts.size());
    for (const auto &u : dataPorts)
        s.dataPorts.push_back(u->captureState());
    return s;
}

void
GlobalMemory::restoreState(const State &s)
{
    GPUCC_ASSERT(s.atomicUnits.size() == atomicUnits.size() &&
                     s.dataPorts.size() == dataPorts.size(),
                 "global-memory state partition count mismatch");
    // Adopt the frozen snapshot store; ensureOwnWords() clones it on
    // this device's first write. const_pointer_cast is sound because
    // every mutation path goes through ensureOwnWords(), which unshares
    // first — the snapshot's view is never modified.
    words = std::const_pointer_cast<std::unordered_map<Addr, std::uint64_t>>(
        s.words);
    for (std::size_t i = 0; i < atomicUnits.size(); ++i)
        atomicUnits[i]->restoreState(s.atomicUnits[i]);
    for (std::size_t i = 0; i < dataPorts.size(); ++i)
        dataPorts[i]->restoreState(s.dataPorts[i]);
}

void
GlobalMemory::registerMetrics(metrics::Registry &reg)
{
    reg.gauge("mem.atomic.busyTicks", [this] {
        return static_cast<double>(atomicBusyTicks());
    });
    reg.gauge("mem.atomic.requests", [this] {
        double total = 0.0;
        for (const auto &u : atomicUnits)
            total += static_cast<double>(u->requests());
        return total;
    });
    reg.gauge("mem.atomic.queueingTicks", [this] {
        double total = 0.0;
        for (const auto &u : atomicUnits)
            total += static_cast<double>(u->totalQueueing());
        return total;
    });
    reg.gauge("mem.dataPort.busyTicks", [this] {
        double total = 0.0;
        for (const auto &u : dataPorts)
            total += static_cast<double>(u->busyTicks());
        return total;
    });
}

} // namespace gpucc::mem

#include "mem/set_assoc_cache.h"

#include <algorithm>

namespace gpucc::mem
{

SetAssocCache::SetAssocCache(std::string name_, const CacheGeometry &geom_)
    : name(std::move(name_)), geom(geom_)
{
    geom.validate(name.c_str());
    const std::size_t n = geom.numSets() * geom.ways;
    tags.assign(n, invalidTag);
    lastUse.assign(n, 0);
    valid.assign(n, 0);
    owners.assign(n, -1);
}

void
SetAssocCache::flush()
{
    std::fill(tags.begin(), tags.end(), invalidTag);
    std::fill(lastUse.begin(), lastUse.end(), 0);
    std::fill(valid.begin(), valid.end(), std::uint8_t(0));
}

bool
SetAssocCache::invalidate(Addr addr)
{
    const std::size_t base = geom.setOf(addr) * geom.ways;
    const Addr tag = geom.tagOf(addr);
    for (unsigned w = 0; w < geom.ways; ++w) {
        if (tags[base + w] == tag) {
            tags[base + w] = invalidTag;
            lastUse[base + w] = 0;
            valid[base + w] = 0;
            return true;
        }
    }
    return false;
}

std::vector<SetAssocCache::LineView>
SetAssocCache::setState(std::size_t set) const
{
    const std::size_t base = set * geom.ways;
    std::vector<LineView> out(geom.ways);
    for (unsigned w = 0; w < geom.ways; ++w) {
        out[w].valid = valid[base + w] != 0;
        out[w].tag = out[w].valid ? tags[base + w] : Addr(0);
        out[w].owner = owners[base + w];
        if (!out[w].valid)
            continue;
        // Rank = number of valid lines in the set touched more recently.
        unsigned rank = 0;
        for (unsigned o = 0; o < geom.ways; ++o) {
            if (o != w && valid[base + o] &&
                lastUse[base + o] > lastUse[base + w])
                ++rank;
        }
        out[w].lruRank = rank;
    }
    return out;
}

unsigned
SetAssocCache::validLinesInSet(std::size_t set) const
{
    const std::size_t base = set * geom.ways;
    unsigned n = 0;
    for (unsigned w = 0; w < geom.ways; ++w) {
        if (valid[base + w])
            ++n;
    }
    return n;
}

SetAssocCache::State
SetAssocCache::captureState() const
{
    return State{tags, lastUse, valid, owners, useClock, hitCount,
                 missCount};
}

void
SetAssocCache::restoreState(const State &s)
{
    GPUCC_ASSERT(s.tags.size() == tags.size(),
                 "%s: restoreState geometry mismatch", name.c_str());
    tags = s.tags;
    lastUse = s.lastUse;
    valid = s.valid;
    owners = s.owners;
    useClock = s.useClock;
    hitCount = s.hitCount;
    missCount = s.missCount;
}

} // namespace gpucc::mem

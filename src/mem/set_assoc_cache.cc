#include "mem/set_assoc_cache.h"

namespace gpucc::mem
{

SetAssocCache::SetAssocCache(std::string name_, const CacheGeometry &geom_)
    : name(std::move(name_)), geom(geom_)
{
    geom.validate(name.c_str());
    lines.resize(geom.numSets() * geom.ways);
}

SetAssocCache::Line &
SetAssocCache::lineAt(std::size_t set, unsigned way)
{
    return lines[set * geom.ways + way];
}

const SetAssocCache::Line &
SetAssocCache::lineAt(std::size_t set, unsigned way) const
{
    return lines[set * geom.ways + way];
}

CacheAccessResult
SetAssocCache::access(Addr addr, int owner)
{
    return accessInWays(addr, 0, geom.ways, owner);
}

CacheAccessResult
SetAssocCache::accessInWays(Addr addr, unsigned wayBegin, unsigned wayEnd,
                            int owner)
{
    GPUCC_ASSERT(wayBegin < wayEnd && wayEnd <= geom.ways,
                 "%s: bad way range [%u, %u)", name.c_str(), wayBegin,
                 wayEnd);
    CacheAccessResult res;
    std::size_t set = geom.setOf(addr);
    Addr tag = geom.tagOf(addr);
    ++useClock;

    // Hit path: a hit may match any way, partitioned or not.
    for (unsigned w = 0; w < geom.ways; ++w) {
        Line &l = lineAt(set, w);
        if (l.valid && l.tag == tag) {
            l.lastUse = useClock;
            ++hitCount;
            res.hit = true;
            return res;
        }
    }

    // Miss: allocate into an invalid way or the true-LRU victim, within
    // the requester's way partition.
    ++missCount;
    unsigned victim = wayBegin;
    std::uint64_t oldest = UINT64_MAX;
    for (unsigned w = wayBegin; w < wayEnd; ++w) {
        Line &l = lineAt(set, w);
        if (!l.valid) {
            victim = w;
            oldest = 0;
            break;
        }
        if (l.lastUse < oldest) {
            oldest = l.lastUse;
            victim = w;
        }
    }
    Line &v = lineAt(set, victim);
    if (v.valid) {
        res.evicted = true;
        res.victimLine = (v.tag * geom.numSets() + set) * geom.lineBytes;
        res.victimOwner = v.owner;
    }
    v.valid = true;
    v.tag = tag;
    v.lastUse = useClock;
    v.owner = owner;
    return res;
}

bool
SetAssocCache::probe(Addr addr) const
{
    std::size_t set = geom.setOf(addr);
    Addr tag = geom.tagOf(addr);
    for (unsigned w = 0; w < geom.ways; ++w) {
        const Line &l = lineAt(set, w);
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

void
SetAssocCache::flush()
{
    for (auto &l : lines)
        l.valid = false;
}

bool
SetAssocCache::invalidate(Addr addr)
{
    std::size_t set = geom.setOf(addr);
    Addr tag = geom.tagOf(addr);
    for (unsigned w = 0; w < geom.ways; ++w) {
        Line &l = lineAt(set, w);
        if (l.valid && l.tag == tag) {
            l.valid = false;
            return true;
        }
    }
    return false;
}

std::vector<SetAssocCache::LineView>
SetAssocCache::setState(std::size_t set) const
{
    std::vector<LineView> out(geom.ways);
    for (unsigned w = 0; w < geom.ways; ++w) {
        const Line &l = lineAt(set, w);
        out[w].valid = l.valid;
        out[w].tag = l.tag;
        out[w].owner = l.owner;
        if (!l.valid)
            continue;
        // Rank = number of valid lines in the set touched more recently.
        unsigned rank = 0;
        for (unsigned o = 0; o < geom.ways; ++o) {
            const Line &other = lineAt(set, o);
            if (o != w && other.valid && other.lastUse > l.lastUse)
                ++rank;
        }
        out[w].lruRank = rank;
    }
    return out;
}

unsigned
SetAssocCache::validLinesInSet(std::size_t set) const
{
    unsigned n = 0;
    for (unsigned w = 0; w < geom.ways; ++w) {
        if (lineAt(set, w).valid)
            ++n;
    }
    return n;
}

} // namespace gpucc::mem

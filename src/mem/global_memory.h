/**
 * @file
 * Global (device) memory model: address-interleaved memory partitions,
 * per-partition data ports, and per-partition atomic units.
 *
 * Section 6 of the paper builds covert channels on atomic-unit
 * contention: normal loads/stores cannot saturate the very wide DRAM
 * bandwidth, but atomic operations funnel through a small number of
 * units. On Fermi, atomics are slow read-modify-write operations; on
 * Kepler/Maxwell they execute in the L2 at one operation per clock per
 * line (the 9x improvement the Kepler whitepaper advertises and the
 * paper observes). Operations to the same memory segment serialize at
 * the owning atomic unit, which is why the "consecutive addresses"
 * scenario 3 is the slowest channel in Figure 10.
 */

#ifndef GPUCC_MEM_GLOBAL_MEMORY_H
#define GPUCC_MEM_GLOBAL_MEMORY_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "mem/coalescer.h"
#include "sim/resource_pool.h"

namespace gpucc::metrics
{
class Registry;
} // namespace gpucc::metrics

namespace gpucc::mem
{

/** Timing parameters for the global memory system. */
struct GlobalMemoryParams
{
    unsigned numPartitions = 6;        //!< memory partitions (channels)
    std::size_t segmentBytes = 128;    //!< coalescing segment size
    std::size_t interleaveBytes = 256; //!< partition interleave granule
    Cycle atomicOccCycles = 1;   //!< atomic-unit occupancy per lane op
    Cycle atomicTxnOverheadCycles = 8; //!< fixed cost per transaction
    Cycle atomicLatencyCycles = 180; //!< atomic round-trip latency
    unsigned atomicUnitsPerPartition = 1;
    Cycle txnOccCycles = 2;      //!< data-port occupancy per transaction
    Cycle loadLatencyCycles = 350;   //!< DRAM/L2 load round trip
    unsigned dataPortsPerPartition = 2;
};

/** Timing + functional model of device global memory. */
class GlobalMemory
{
  public:
    explicit GlobalMemory(const GlobalMemoryParams &params);

    /**
     * Warp-wide atomic add.
     *
     * @param laneAddrs Per-lane target addresses (word granularity).
     * @param value Added to each target word.
     * @param now Issue tick.
     * @param oldValues Optional out: previous value per lane.
     * @return completion tick of the slowest transaction.
     */
    Tick atomicAdd(const std::vector<Addr> &laneAddrs, std::uint64_t value,
                   Tick now, std::vector<std::uint64_t> *oldValues = nullptr);

    /** Warp-wide load; returns completion tick. */
    Tick load(const std::vector<Addr> &laneAddrs, Tick now);

    /** Warp-wide store; returns completion tick. */
    Tick store(const std::vector<Addr> &laneAddrs, Tick now);

    /** Functional read of one word (host-side result checking). */
    std::uint64_t peek(Addr addr) const;

    /** Functional write of one word. */
    void poke(Addr addr, std::uint64_t value);

    /** Partition that owns @p addr. */
    unsigned partitionOf(Addr addr) const;

    /** Parameter accessor. */
    const GlobalMemoryParams &params() const { return p; }

    /** Aggregate atomic-unit busy ticks (tests check contention). */
    Tick atomicBusyTicks() const;

    /** Atomic-unit pool of partition @p i (verification digests). */
    const sim::ResourcePool &atomicUnitPool(unsigned i) const
    {
        return *atomicUnits[i];
    }

    /** Data-port pool of partition @p i (verification digests). */
    const sim::ResourcePool &dataPortPool(unsigned i) const
    {
        return *dataPorts[i];
    }

    /** Functional word store, sorted by address (verification digests;
     *  the backing map iterates in hash order, which is not stable). */
    std::vector<std::pair<Addr, std::uint64_t>> wordsSnapshot() const;

    /** Expose atomic-unit/data-port gauges in @p reg (Device calls
     *  once). */
    void registerMetrics(metrics::Registry &reg);

    /**
     * Complete mutable state, for device snapshot/fork. The functional
     * word store is shared copy-on-write: capture hands out a reference
     * to the live map (O(1) regardless of footprint), restore adopts
     * it, and the first post-fork write — on either side — pays the one
     * deep copy (ensureOwnWords).
     */
    struct State
    {
        std::shared_ptr<const std::unordered_map<Addr, std::uint64_t>>
            words;
        std::vector<sim::ResourcePool::State> atomicUnits;
        std::vector<sim::ResourcePool::State> dataPorts;
    };

    /** Capture the full state (geometry/timing params not included). */
    State captureState() const;

    /** Restore state captured from a same-parameter memory. */
    void restoreState(const State &s);

  private:
    /** Make the word store uniquely owned before mutating it. */
    std::unordered_map<Addr, std::uint64_t> &
    ensureOwnWords()
    {
        if (words.use_count() != 1) [[unlikely]]
            words = std::make_shared<
                std::unordered_map<Addr, std::uint64_t>>(*words);
        return *words;
    }

    GlobalMemoryParams p;
    Coalescer coalescer;
    std::vector<std::unique_ptr<sim::ResourcePool>> atomicUnits;
    std::vector<std::unique_ptr<sim::ResourcePool>> dataPorts;
    /** Functional words; shared (frozen) while a snapshot references
     *  it, cloned on the first write after capture/restore. */
    std::shared_ptr<std::unordered_map<Addr, std::uint64_t>> words;
};

} // namespace gpucc::mem

#endif // GPUCC_MEM_GLOBAL_MEMORY_H

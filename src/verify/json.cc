#include "verify/json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace gpucc::verify
{

namespace
{

/** Shared "absent member" sentinel. */
const JsonValue nullValue{};

/** Cursor over the input with one-shot error reporting. */
struct Parser
{
    const std::string &s;
    std::size_t at = 0;
    std::string error;

    bool failed() const { return !error.empty(); }

    void
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg + " at offset " + std::to_string(at);
    }

    void
    skipWs()
    {
        while (at < s.size() &&
               std::isspace(static_cast<unsigned char>(s[at])))
            ++at;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (at < s.size() && s[at] == c) {
            ++at;
            return true;
        }
        return false;
    }

    char
    peek()
    {
        skipWs();
        return at < s.size() ? s[at] : '\0';
    }

    JsonValue
    parseValue(unsigned depth)
    {
        if (depth > 64) {
            fail("nesting too deep");
            return {};
        }
        switch (peek()) {
        case '{':
            return parseObject(depth);
        case '[':
            return parseArray(depth);
        case '"':
            return parseString();
        case 't':
        case 'f':
            return parseBool();
        case 'n':
            return parseNull();
        default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject(unsigned depth)
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        consume('{');
        if (consume('}'))
            return v;
        do {
            JsonValue key = parseString();
            if (failed())
                return v;
            if (!consume(':')) {
                fail("expected ':' after object key");
                return v;
            }
            v.members[key.text] = parseValue(depth + 1);
            if (failed())
                return v;
        } while (consume(','));
        if (!consume('}'))
            fail("expected '}' or ','");
        return v;
    }

    JsonValue
    parseArray(unsigned depth)
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        consume('[');
        if (consume(']'))
            return v;
        do {
            v.items.push_back(parseValue(depth + 1));
            if (failed())
                return v;
        } while (consume(','));
        if (!consume(']'))
            fail("expected ']' or ','");
        return v;
    }

    JsonValue
    parseString()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        if (!consume('"')) {
            fail("expected string");
            return v;
        }
        while (at < s.size() && s[at] != '"') {
            char c = s[at];
            if (c == '\\') {
                if (at + 1 >= s.size()) {
                    fail("unterminated escape");
                    return v;
                }
                char esc = s[at + 1];
                switch (esc) {
                case '"': v.text += '"'; break;
                case '\\': v.text += '\\'; break;
                case '/': v.text += '/'; break;
                case 'b': v.text += '\b'; break;
                case 'f': v.text += '\f'; break;
                case 'n': v.text += '\n'; break;
                case 'r': v.text += '\r'; break;
                case 't': v.text += '\t'; break;
                case 'u': {
                    // Band files are ASCII; decode BMP escapes to the
                    // low byte and reject surrogates outright.
                    if (at + 5 >= s.size()) {
                        fail("truncated \\u escape");
                        return v;
                    }
                    unsigned code = static_cast<unsigned>(std::strtoul(
                        s.substr(at + 2, 4).c_str(), nullptr, 16));
                    if (code > 0x7f) {
                        fail("non-ASCII \\u escape unsupported");
                        return v;
                    }
                    v.text += static_cast<char>(code);
                    at += 4;
                    break;
                }
                default:
                    fail("bad escape");
                    return v;
                }
                at += 2;
            } else {
                v.text += c;
                ++at;
            }
        }
        if (at >= s.size()) {
            fail("unterminated string");
            return v;
        }
        ++at; // closing quote
        return v;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (s.compare(at, 4, "true") == 0) {
            v.boolean = true;
            at += 4;
        } else if (s.compare(at, 5, "false") == 0) {
            at += 5;
        } else {
            fail("expected boolean");
        }
        return v;
    }

    JsonValue
    parseNull()
    {
        JsonValue v;
        if (s.compare(at, 4, "null") == 0)
            at += 4;
        else
            fail("expected null");
        return v;
    }

    JsonValue
    parseNumber()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        skipWs();
        const char *begin = s.c_str() + at;
        char *end = nullptr;
        v.number = std::strtod(begin, &end);
        if (end == begin) {
            fail("expected a value");
            return v;
        }
        at += static_cast<std::size_t>(end - begin);
        return v;
    }
};

} // namespace

const JsonValue &
JsonValue::get(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullValue;
    auto it = members.find(key);
    return it == members.end() ? nullValue : it->second;
}

bool
JsonValue::has(const std::string &key) const
{
    return kind == Kind::Object && members.count(key) != 0;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue &v = get(key);
    return v.isNumber() ? v.number : fallback;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue &v = get(key);
    return v.isString() ? v.text : fallback;
}

JsonParseResult
parseJson(const std::string &text)
{
    Parser p{text, 0, {}};
    JsonParseResult r;
    r.value = p.parseValue(0);
    p.skipWs();
    if (!p.failed() && p.at != text.size())
        p.fail("trailing content");
    r.ok = !p.failed();
    r.error = p.error;
    return r;
}

JsonParseResult
parseJsonFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is.good()) {
        JsonParseResult r;
        r.error = "cannot open " + path;
        return r;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    return parseJson(buf.str());
}

} // namespace gpucc::verify

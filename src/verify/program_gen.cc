#include "verify/program_gen.h"

#include <utility>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "gpu/warp_ctx.h"

namespace gpucc::verify
{

namespace
{

/** splitmix64 (also the digest mixer): cheap seed derivation. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** The seed-determined program shape shared by every warp. */
struct Skeleton
{
    struct Segment
    {
        bool barrierAfter = false;
    };
    std::vector<Segment> segments;
    std::uint64_t seed = 0;
    unsigned minOps = 1;
    unsigned maxOps = 1;
    std::size_t smemBytes = 0;
    Addr globalBase = 0;
    Addr globalSpan = 0;
    bool useGlobal = false;
    bool useConst = false;
    bool useShared = false;
    std::vector<gpu::OpClass> ops; //!< compute ops this arch supports
};

/** One warp's body: replays the skeleton with per-warp random choices. */
gpu::WarpProgram
runWarp(gpu::WarpCtx &ctx, const Skeleton &plan)
{
    Rng rng(mix64(plan.seed ^ mix64(ctx.globalWarpId() + 1)));
    std::uint64_t acc = 0;

    for (const auto &segment : plan.segments) {
        unsigned ops = static_cast<unsigned>(
            rng.uniformInt(plan.minOps, plan.maxOps));
        for (unsigned i = 0; i < ops; ++i) {
            // Weighted action pick; unavailable families fall through
            // to a plain compute op so draw counts stay seed-stable.
            unsigned roll = static_cast<unsigned>(rng.uniformInt(0, 99));
            Addr base = plan.globalBase +
                        static_cast<Addr>(rng.uniformInt(
                            0, static_cast<std::int64_t>(
                                   plan.globalSpan / 8 - warpSize))) *
                            4;
            if (roll < 40) {
                auto op = plan.ops[static_cast<std::size_t>(
                    rng.uniformInt(0,
                                   static_cast<std::int64_t>(
                                       plan.ops.size() - 1)))];
                acc += co_await ctx.op(op);
            } else if (roll < 50) {
                acc += co_await ctx.clock();
            } else if (roll < 65 && plan.useConst) {
                Addr caddr =
                    static_cast<Addr>(rng.uniformInt(0, 16384 / 4 - 1)) *
                    4;
                if (roll < 60) {
                    acc += co_await ctx.constLoad(caddr);
                } else {
                    std::vector<Addr> chain;
                    unsigned n =
                        static_cast<unsigned>(rng.uniformInt(2, 5));
                    for (unsigned j = 0; j < n; ++j)
                        chain.push_back((caddr + j * 256) % 16384);
                    acc += co_await ctx.constLoadSeq(std::move(chain));
                }
            } else if (roll < 80 && plan.useGlobal) {
                std::vector<Addr> lanes;
                bool coalesced = rng.flip();
                for (unsigned lane = 0; lane < warpSize; ++lane)
                    lanes.push_back(coalesced ? base + lane * 4 : base);
                if (roll < 70)
                    acc += co_await ctx.globalLoad(lanes);
                else if (roll < 75)
                    acc += co_await ctx.globalStore(lanes);
                else
                    acc += co_await ctx.atomicAdd(lanes, 1 + (roll % 3));
            } else if (roll < 90 && plan.useShared) {
                std::vector<Addr> offsets;
                unsigned stride =
                    rng.flip() ? 4u : 8u; // 8 = 2-way bank conflicts
                for (unsigned lane = 0; lane < warpSize; ++lane)
                    offsets.push_back((lane * stride) %
                                      plan.smemBytes);
                acc += co_await ctx.sharedAccess(offsets);
                ctx.smemWrite((ctx.warpInBlock() * 4) % plan.smemBytes,
                              static_cast<std::uint32_t>(acc));
            } else if (roll < 95) {
                acc += co_await
                    ctx.sleep(static_cast<Cycle>(rng.uniformInt(1, 32)));
            } else {
                acc += co_await ctx.op(plan.ops.front());
            }
        }
        if (segment.barrierAfter)
            co_await ctx.syncthreads();
    }

    ctx.out(acc);
    ctx.out(mix64(acc ^ ctx.globalWarpId()));
    co_return;
}

} // namespace

ProgramGen::ProgramGen(const gpu::ArchParams &arch_, ProgramGenConfig cfg_)
    : arch(arch_), cfg(cfg_)
{
    GPUCC_ASSERT(cfg.minSegments >= 1 &&
                     cfg.maxSegments >= cfg.minSegments,
                 "bad segment bounds");
    GPUCC_ASSERT(cfg.minOpsPerSegment >= 1 &&
                     cfg.maxOpsPerSegment >= cfg.minOpsPerSegment,
                 "bad op bounds");
}

gpu::KernelLaunch
ProgramGen::makeKernel(std::uint64_t seed) const
{
    Rng rng(mix64(seed));

    Skeleton plan;
    plan.seed = seed;
    plan.minOps = cfg.minOpsPerSegment;
    plan.maxOps = cfg.maxOpsPerSegment;
    plan.globalBase = cfg.globalBase;
    plan.globalSpan = cfg.globalSpan;
    plan.useGlobal = cfg.useGlobalMemory;
    plan.useConst = cfg.useConstMemory;
    plan.useShared = cfg.useSharedMemory;
    plan.smemBytes = cfg.useSharedMemory ? 1024 : 0;

    plan.ops = {gpu::OpClass::FAdd, gpu::OpClass::FMul,
                gpu::OpClass::Sinf, gpu::OpClass::Sqrt};
    if (arch.supports(gpu::OpClass::DAdd))
        plan.ops.push_back(gpu::OpClass::DAdd);

    unsigned segments = static_cast<unsigned>(
        rng.uniformInt(cfg.minSegments, cfg.maxSegments));
    for (unsigned i = 0; i < segments; ++i) {
        Skeleton::Segment s;
        // Never after the last segment: a trailing barrier adds nothing.
        s.barrierAfter =
            cfg.useBarriers && i + 1 < segments && rng.flip();
        plan.segments.push_back(s);
    }

    gpu::KernelLaunch k;
    k.name = "gen-" + std::to_string(seed);
    k.config.gridBlocks = static_cast<unsigned>(
        rng.uniformInt(1, cfg.maxGridBlocks));
    k.config.threadsPerBlock =
        static_cast<unsigned>(rng.uniformInt(1, cfg.maxWarpsPerBlock)) *
        warpSize;
    k.config.smemBytesPerBlock = plan.smemBytes;
    k.body = [plan = std::move(plan)](gpu::WarpCtx &ctx) {
        return runWarp(ctx, plan);
    };
    return k;
}

} // namespace gpucc::verify

/**
 * @file
 * Rolling 64-bit digests of simulator state: cheap bit-exactness
 * oracles for the metamorphic test suite and for pinning refactors of
 * timing-critical code.
 *
 * StateDigest is a keyed sponge over 64-bit words (splitmix64 as the
 * mixing function). digestDevice() streams a Device's *architectural*
 * state through it — SM occupancy, warp-scheduler pipeline timelines,
 * constant-cache tag arrays with LRU order, global-memory timelines and
 * functional words, kernel outputs and block placements — so two runs
 * that are "the same experiment" produce the same 64-bit value, and
 * any divergence (an event reordered, a tag installed into a different
 * way, one extra cycle of port occupancy) avalanches into a different
 * value.
 *
 * Observability bookkeeping (metric registries, trace buffers, fault
 * counters) is deliberately *excluded*: the attach-vs-detach oracle
 * asserts that instrumentation never perturbs what it observes.
 *
 * DigestCheckpoints rides the event queue like the metrics sampler:
 * every @p period cycles it folds a fresh device digest into a rolling
 * hash, so the final value covers the *trajectory* of the simulation,
 * not only its endpoint. It stops rescheduling when the queue would
 * otherwise drain, preserving runUntilIdle() termination.
 */

#ifndef GPUCC_VERIFY_DIGEST_H
#define GPUCC_VERIFY_DIGEST_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace gpucc::gpu
{
class Device;
} // namespace gpucc::gpu

namespace gpucc::sim
{
class ResourcePool;
} // namespace gpucc::sim

namespace gpucc::mem
{
class SetAssocCache;
} // namespace gpucc::mem

namespace gpucc::verify
{

/** Order-sensitive 64-bit rolling hash over typed words. */
class StateDigest
{
  public:
    explicit StateDigest(std::uint64_t key = 0) { u64(key); }

    /** Fold one 64-bit word. */
    void
    u64(std::uint64_t x)
    {
        h ^= mix(x + counter++);
        h = mix(h);
    }

    /** Fold one signed value. */
    void i64(std::int64_t x) { u64(static_cast<std::uint64_t>(x)); }

    /** Fold one double (by bit pattern; -0.0 canonicalized to 0.0). */
    void f64(double x);

    /** Fold a string (length-prefixed, so "ab","c" != "a","bc"). */
    void str(const std::string &s);

    /** Fold another digest (checkpoint accumulation). */
    void fold(const StateDigest &other) { u64(other.value()); }

    /** Current digest value. */
    std::uint64_t value() const { return h; }

    /** SplitMix64 finalizer (the mixing primitive, exposed for tests). */
    static std::uint64_t mix(std::uint64_t x);

  private:
    std::uint64_t h = 0x6770756363646967ULL; // "gpuccdig"
    std::uint64_t counter = 1;
};

/** What digestDevice() includes beyond the always-on architectural
 *  state. */
struct DigestOptions
{
    /**
     * Fold the device clock (now()). Disable together with eventQueue
     * when comparing against a run whose *schedule* differs benignly —
     * e.g. the periodic metrics sampler appends events after the last
     * architectural one, moving the final drain tick.
     */
    bool deviceClock = true;
    /**
     * Fold the pending event list (when, sequence). Sequence numbers
     * count every schedule() since construction, so runs must have
     * identical scheduling histories — the strictest setting. Disable
     * to compare runs whose bookkeeping differs (e.g. with and without
     * an armed-but-quiet fault injector that never schedules).
     */
    bool eventQueue = true;
    /** Fold per-kernel warp outputs and block placement records. */
    bool kernelOutputs = true;
    /** Fold the functional global-memory word store. */
    bool memoryWords = true;
};

/** Stream @p dev's architectural state into @p d. (Non-const only
 *  because the Device accessors are; nothing is modified.) */
void digestDevice(gpu::Device &dev, StateDigest &d,
                  const DigestOptions &opts = {});

/** One-shot convenience: digest of @p dev with @p opts. */
std::uint64_t deviceDigest(gpu::Device &dev,
                           const DigestOptions &opts = {});

/** Stream one resource pool's timeline state (helper, reused by
 *  digestDevice over every scheduler port). */
void digestPool(const sim::ResourcePool &pool, StateDigest &d);

/** Stream one cache's tag array and LRU order. */
void digestCache(const mem::SetAssocCache &cache, StateDigest &d);

/** Periodic checkpointing of a device digest along the run. */
class DigestCheckpoints
{
  public:
    /**
     * Install on @p dev: every @p periodCycles of simulated time a
     * checkpoint digest is folded into the rolling value. Must outlive
     * the run it observes.
     */
    DigestCheckpoints(gpu::Device &dev, Cycle periodCycles,
                      DigestOptions opts = {});

    /** Checkpoints taken so far. */
    unsigned checkpoints() const { return taken; }

    /** Rolling digest over all checkpoints so far. */
    std::uint64_t value() const { return rolling.value(); }

    /** Take one checkpoint immediately (also used internally). */
    void checkpointNow();

  private:
    void scheduleNext();

    gpu::Device &dev;
    Tick period;
    DigestOptions opts;
    StateDigest rolling;
    unsigned taken = 0;
};

} // namespace gpucc::verify

#endif // GPUCC_VERIFY_DIGEST_H

#include "verify/scenarios.h"

#include <algorithm>

#include "common/rng.h"
#include "covert/channels/l1_const_channel.h"
#include "covert/channels/l2_const_channel.h"
#include "covert/channels/sfu_channel.h"
#include "covert/characterize/fu_characterizer.h"
#include "covert/coding/error_code.h"
#include "covert/league/league.h"
#include "covert/link/reliable_link.h"
#include "covert/link/transport.h"
#include "covert/parallel/sfu_parallel_channel.h"
#include "covert/session/session.h"
#include "covert/sync/duplex_channel.h"
#include "covert/sync/sync_channel.h"
#include "covert/sync/sync_sfu_channel.h"
#include "covert/synth/synthesizer.h"
#include "sim/exec/sweep_runner.h"
#include "sim/fault/fault_injector.h"
#include "sim/fault/fault_plan.h"
#include "svc/service.h"
#include "verify/digest.h"

namespace gpucc::verify
{

BitVec
scenarioPayload(std::size_t bits, std::uint64_t seed)
{
    Rng rng(seed);
    return randomBits(bits, rng);
}

ChannelMeasurement
summarize(const covert::ChannelResult &r)
{
    return {r.bandwidthBps, r.report.errorRate(), r.report.errorFree()};
}

ChannelMeasurement
measureL1Baseline(const gpu::ArchParams &arch, std::size_t bits)
{
    covert::L1ConstChannel ch(arch);
    return summarize(ch.transmit(scenarioPayload(bits)));
}

ChannelMeasurement
measureL1LaunchPerBit(const gpu::ArchParams &arch, std::size_t bits,
                      const covert::LaunchPerBitConfig &cfg)
{
    covert::L1ConstChannel ch(arch, cfg);
    return summarize(ch.transmit(scenarioPayload(bits)));
}

ChannelMeasurement
measureL2LaunchPerBit(const gpu::ArchParams &arch, std::size_t bits,
                      const covert::LaunchPerBitConfig &cfg)
{
    covert::L2ConstChannel ch(arch, cfg);
    return summarize(ch.transmit(scenarioPayload(bits)));
}

ChannelMeasurement
measureSyncL1(const gpu::ArchParams &arch, std::size_t bits,
              unsigned dataSetsPerSm, bool allSms)
{
    covert::SyncChannelConfig cfg;
    cfg.dataSetsPerSm = dataSetsPerSm;
    cfg.allSms = allSms;
    covert::SyncL1Channel ch(arch, cfg);
    return summarize(ch.transmit(scenarioPayload(bits)));
}

ChannelMeasurement
measureSfuBaseline(const gpu::ArchParams &arch, std::size_t bits)
{
    covert::SfuChannel ch(arch);
    return summarize(ch.transmit(scenarioPayload(bits)));
}

ChannelMeasurement
measureSfuParallel(const gpu::ArchParams &arch, std::size_t bits,
                   bool acrossSms)
{
    covert::SfuParallelConfig cfg;
    cfg.acrossSms = acrossSms;
    covert::SfuParallelChannel ch(arch, cfg);
    return summarize(ch.transmit(scenarioPayload(bits)));
}

ChannelMeasurement
measureSyncSfu(const gpu::ArchParams &arch, std::size_t bits)
{
    covert::SyncSfuChannel ch(arch);
    return summarize(ch.transmit(scenarioPayload(bits)));
}

AtomicMeasurement
measureAtomic(const gpu::ArchParams &arch, covert::AtomicScenario scenario,
              std::size_t bits)
{
    covert::AtomicChannel ch(arch, scenario);
    AtomicMeasurement m;
    m.iterations = ch.autoTuneIterations();
    m.channel = summarize(ch.transmit(scenarioPayload(bits)));
    return m;
}

FuCurveSummary
measureFuCurve(const gpu::ArchParams &arch, gpu::OpClass op,
               unsigned maxWarps)
{
    covert::FuCharacterizer fc(arch);
    auto curve = fc.curve(op, maxWarps);
    FuCurveSummary s;
    s.baseCycles = curve.front().warp0AvgCycles;
    s.peakCycles = curve.back().warp0AvgCycles;
    s.onsetWarps = covert::FuCharacterizer::contentionOnset(curve);
    return s;
}

namespace
{

/** Fresh duplex channel with an armed fault injector (one per
 *  measurement, as in the Section 8 bench). */
struct FaultedDuplex
{
    covert::DuplexSyncChannel chan;
    sim::fault::FaultInjector injector;

    FaultedDuplex(const gpu::ArchParams &arch, const std::string &plan,
                  std::uint64_t seed)
        : chan(arch),
          injector(chan.harness().device(),
                   sim::fault::FaultPlan::preset(plan), seed)
    {
        injector.arm();
    }
};

} // namespace

ChannelMeasurement
measureDuplexRaw(const gpu::ArchParams &arch, const std::string &planName,
                 std::uint64_t faultSeed, const BitVec &payload)
{
    FaultedDuplex rig(arch, planName, faultSeed);
    auto r = rig.chan.exchange(payload, {});
    return summarize(r.aToB);
}

ChannelMeasurement
measureFecDuplex(const gpu::ArchParams &arch, const std::string &planName,
                 std::uint64_t faultSeed, const BitVec &payload,
                 const covert::ErrorCode &code)
{
    FaultedDuplex rig(arch, planName, faultSeed);
    auto r = rig.chan.exchange(code.encode(payload), {});
    BitVec decoded = code.decode(r.aToB.received, payload.size());
    auto report = compareBits(payload, decoded);
    double seconds = r.aToB.seconds;
    double bps = seconds > 0.0
                     ? static_cast<double>(payload.size()) / seconds
                     : 0.0;
    return {bps, report.errorRate(), report.errorFree()};
}

ArqMeasurement
measureArqOverPlan(const gpu::ArchParams &arch, const std::string &planName,
                   std::uint64_t faultSeed, const BitVec &payload,
                   const covert::ErrorCode *innerFec)
{
    FaultedDuplex rig(arch, planName, faultSeed);
    covert::link::DuplexLinkTransport transport(rig.chan);
    covert::link::LinkConfig cfg;
    cfg.payloadBits = 32;
    cfg.window = 4;
    cfg.innerFec = innerFec;
    covert::link::ReliableLink link(transport, cfg);
    auto r = link.send(payload);
    return {compareBits(payload, r.payload).errorRate(), r.goodputBps,
            r.complete, r.retransmissions};
}

SessionMeasurement
measureSessionOverPlan(const gpu::ArchParams &arch,
                       const std::string &planName,
                       std::uint64_t faultSeed, const BitVec &payload,
                       obs::Profiler *profiler)
{
    covert::session::SessionConfig cfg;
    cfg.link.payloadBits = 32;
    cfg.link.window = 4;
    cfg.profiler = profiler;
    covert::session::ChannelSession session(arch, cfg);
    sim::fault::FaultInjector injector(
        session.channel().harness().device(),
        sim::fault::FaultPlan::preset(planName), faultSeed);
    injector.arm();
    covert::session::SessionResult r = session.run(payload);
    SessionMeasurement m;
    m.residualBer = r.residualBer;
    m.goodputBps = r.goodputBps;
    m.complete = r.complete;
    m.calibrated = r.calibration.ok;
    m.resyncs = r.resyncs;
    m.recalibrations = r.recalibrations;
    m.degradeSteps = r.degradeSteps;
    m.evictions = injector.stats().evictions;
    // Digest with the plan disarmed and the queue drained: a pure
    // function of (arch, plan, seed, payload) that any observer
    // attachment must leave untouched.
    injector.disarm();
    gpu::Device &dev = session.channel().harness().device();
    dev.runUntilIdle();
    m.deviceDigest = deviceDigest(dev);
    return m;
}

const MetricValue *
ScenarioResult::find(const std::string &name) const
{
    for (const MetricValue &m : metrics) {
        if (m.name == name)
            return &m;
    }
    return nullptr;
}

bool
Scenario::runsOn(gpu::Generation g) const
{
    return std::find(generations.begin(), generations.end(), g) !=
           generations.end();
}

namespace
{

constexpr gpu::Generation allGens[] = {gpu::Generation::Fermi,
                                       gpu::Generation::Kepler,
                                       gpu::Generation::Maxwell};

void
addChannel(ScenarioResult &r, const std::string &prefix,
           const ChannelMeasurement &m)
{
    r.add(prefix + ".bps", m.bps);
    r.add(prefix + ".error_free", m.errorFree ? 1.0 : 0.0, true);
}

ScenarioResult
runTable1(const gpu::ArchParams &a)
{
    ScenarioResult r;
    r.add("schedulers", a.schedulersPerSm, true);
    r.add("dispatch", a.schedulersPerSm * a.dispatchUnitsPerScheduler,
          true);
    r.add("sp", a.fuCount(gpu::FuType::SP), true);
    r.add("dpu", a.fuCount(gpu::FuType::DPU), true);
    r.add("sfu", a.fuCount(gpu::FuType::SFU), true);
    r.add("ldst", a.fuCount(gpu::FuType::LDST), true);
    r.add("sms", a.numSms, true);
    r.add("clock_ghz", a.clockGHz, true);
    r.add("const_l1_bytes", static_cast<double>(a.constMem.l1.sizeBytes),
          true);
    r.add("const_l1_ways", a.constMem.l1.ways, true);
    r.add("const_l2_bytes", static_cast<double>(a.constMem.l2.sizeBytes),
          true);
    r.add("smem_bytes", static_cast<double>(a.limits.smemBytes), true);
    return r;
}

ScenarioResult
runTable2(const gpu::ArchParams &a)
{
    ScenarioResult r;
    addChannel(r, "baseline", measureL1Baseline(a, 32));
    ChannelMeasurement sync = measureSyncL1(a, 96);
    addChannel(r, "sync", sync);
    ChannelMeasurement multibit = measureSyncL1(a, 192, 6);
    addChannel(r, "multibit", multibit);
    addChannel(r, "parallel", measureSyncL1(a, 384, 6, true));
    r.add("multibit.speedup",
          sync.bps > 0.0 ? multibit.bps / sync.bps : 0.0);
    return r;
}

ScenarioResult
runTable3(const gpu::ArchParams &a)
{
    ScenarioResult r;
    addChannel(r, "baseline", measureSfuBaseline(a, 32));
    addChannel(r, "parallel", measureSfuParallel(a, 64, false));
    addChannel(r, "sms", measureSfuParallel(a, 256, true));
    ChannelMeasurement sync = measureSyncSfu(a, 96);
    r.add("sync.bps", sync.bps);
    r.add("sync.error_rate", sync.errorRate);
    return r;
}

ScenarioResult
runFig05(const gpu::ArchParams &a)
{
    auto point = [&](unsigned iters) {
        covert::LaunchPerBitConfig cfg;
        cfg.iterations = iters;
        cfg.trojanLeadUs = 1.0;
        cfg.jitterUs = 2.5;
        return measureL1LaunchPerBit(a, 64, cfg);
    };
    ChannelMeasurement it20 = point(20);
    ChannelMeasurement it8 = point(8);
    ChannelMeasurement it4 = point(4);
    covert::LaunchPerBitConfig l2cfg;
    l2cfg.iterations = 2;
    l2cfg.trojanLeadUs = 1.0;
    l2cfg.jitterUs = 2.5;
    ChannelMeasurement l2 = measureL2LaunchPerBit(a, 48, l2cfg);

    ScenarioResult r;
    r.add("l1.ber.iter20", it20.errorRate);
    r.add("l1.ber.iter8", it8.errorRate);
    r.add("l1.ber.iter4", it4.errorRate);
    r.add("l1.ber.rise", it4.errorRate - it20.errorRate);
    r.add("l1.bw_ratio_4_20", it20.bps > 0.0 ? it4.bps / it20.bps : 0.0);
    r.add("l2.ber.iter2", l2.errorRate);
    return r;
}

ScenarioResult
runFig06(const gpu::ArchParams &a)
{
    ScenarioResult r;
    const std::pair<gpu::OpClass, const char *> ops[] = {
        {gpu::OpClass::Sinf, "sinf"},
        {gpu::OpClass::Sqrt, "sqrt"},
        {gpu::OpClass::FAdd, "fadd"},
    };
    for (const auto &[op, name] : ops) {
        FuCurveSummary s = measureFuCurve(a, op);
        r.add(std::string(name) + ".base_cycles", s.baseCycles);
        r.add(std::string(name) + ".peak_cycles", s.peakCycles);
        if (op == gpu::OpClass::Sinf)
            r.add("sinf.onset_warps", s.onsetWarps, true);
    }
    return r;
}

ScenarioResult
runFig07(const gpu::ArchParams &a)
{
    ScenarioResult r;
    FuCurveSummary add = measureFuCurve(a, gpu::OpClass::DAdd);
    FuCurveSummary mul = measureFuCurve(a, gpu::OpClass::DMul);
    r.add("dadd.base_cycles", add.baseCycles);
    r.add("dadd.peak_cycles", add.peakCycles);
    r.add("dadd.onset_warps", add.onsetWarps, true);
    r.add("dmul.base_cycles", mul.baseCycles);
    r.add("dmul.peak_cycles", mul.peakCycles);
    return r;
}

ScenarioResult
runFig10(const gpu::ArchParams &a)
{
    AtomicMeasurement s1 =
        measureAtomic(a, covert::AtomicScenario::FixedPerThread, 24);
    AtomicMeasurement s2 =
        measureAtomic(a, covert::AtomicScenario::StridedCoalesced, 24);
    AtomicMeasurement s3 =
        measureAtomic(a, covert::AtomicScenario::ConsecutiveUncoalesced,
                      24);
    ScenarioResult r;
    r.add("s1.bps", s1.channel.bps);
    r.add("s1.error_free", s1.channel.errorFree ? 1.0 : 0.0, true);
    r.add("s1.iterations", s1.iterations, true);
    r.add("s2.bps", s2.channel.bps);
    r.add("s2.error_free", s2.channel.errorFree ? 1.0 : 0.0, true);
    r.add("s3.bps", s3.channel.bps);
    r.add("s3.error_free", s3.channel.errorFree ? 1.0 : 0.0, true);
    r.add("s3_vs_s1",
          s1.channel.bps > 0.0 ? s3.channel.bps / s1.channel.bps : 0.0);
    return r;
}

ScenarioResult
runSec8(const gpu::ArchParams &a)
{
    const std::uint64_t seed = 3;
    const BitVec payload = scenarioPayload(96);
    ChannelMeasurement raw = measureDuplexRaw(a, "bursty", seed, payload);
    ArqMeasurement arq = measureArqOverPlan(a, "bursty", seed, payload);
    ScenarioResult r;
    r.add("raw.ber", raw.errorRate);
    r.add("arq.residual_ber", arq.residualBer, true);
    r.add("arq.complete", arq.complete ? 1.0 : 0.0, true);
    r.add("arq.retransmissions", arq.retransmissions);
    r.add("arq.goodput_bps", arq.goodputBps);
    return r;
}

ScenarioResult
runSessionRobustness(const gpu::ArchParams &a)
{
    const std::uint64_t seed = 11;
    const BitVec payload = scenarioPayload(128, 2026);
    SessionMeasurement quiet =
        measureSessionOverPlan(a, "quiet", seed, payload);
    SessionMeasurement evict =
        measureSessionOverPlan(a, "eviction", seed, payload);
    ScenarioResult r;
    r.add("quiet.complete", quiet.complete ? 1.0 : 0.0, true);
    r.add("quiet.residual_ber", quiet.residualBer, true);
    r.add("quiet.calibrated", quiet.calibrated ? 1.0 : 0.0, true);
    r.add("quiet.goodput_bps", quiet.goodputBps);
    r.add("evict.complete", evict.complete ? 1.0 : 0.0, true);
    r.add("evict.residual_ber", evict.residualBer, true);
    r.add("evict.evictions", evict.evictions);
    r.add("evict.recalibrations", evict.recalibrations);
    r.add("evict.goodput_bps", evict.goodputBps);
    return r;
}

/**
 * Co-evolution league acceptance cell (Section 9 extension): the
 * channel-agile session against the capped reactive defender. The
 * band pins the robustness claim end to end — the defender escalates
 * to timer fuzzing + way partitioning mid-transfer, the attacker
 * completes with zero residual errors via exactly one cross-resource
 * failover onto the atomic units — plus the detector's ROC corners
 * (every cache-channel family flagged, every Rodinia-like workload
 * clean) and the 64-bit league digest, which makes any
 * non-determinism or cross-thread divergence a conformance failure.
 */
ScenarioResult
runLeagueScenario(const gpu::ArchParams &a)
{
    covert::league::LeagueConfig cfg;
    cfg.attackers = {covert::league::agileAttacker()};
    cfg.defenders = {covert::league::noDefense(),
                     covert::league::cappedReactiveDefense()};
    cfg.archs = {a};
    cfg.seedsPerCell = 1;
    // Inline: the conformance runner already fans (scenario, arch).
    cfg.threads = 1;
    covert::league::LeagueTable t = covert::league::runLeague(cfg);

    const covert::league::CellResult &open = t.cells[0];     // none
    const covert::league::CellResult &fought = t.cells[1];   // reactive
    ScenarioResult r;
    r.add("open.complete", open.complete ? 1.0 : 0.0, true);
    r.add("open.residual_ber", open.residualBer, true);
    r.add("open.capacity_bps", open.residualCapacityBps);
    r.add("reactive.complete", fought.complete ? 1.0 : 0.0, true);
    r.add("reactive.residual_ber", fought.residualBer, true);
    r.add("reactive.failovers", double(fought.failovers), true);
    r.add("reactive.final_atomic",
          fought.finalResource == "atomic" ? 1.0 : 0.0, true);
    r.add("reactive.peak_rung", double(fought.defPeakRung), true);
    r.add("reactive.capacity_bps", fought.residualCapacityBps);
    r.add("roc.tp_rate", t.tpRate, true);
    r.add("roc.fp_rate", t.fpRate, true);
    // The digest is 64 bits; bands store doubles, so pin both halves
    // (each fits a double exactly).
    r.add("digest.lo32", double(t.digest & 0xffffffffULL), true);
    r.add("digest.hi32", double(t.digest >> 32), true);
    return r;
}

/**
 * Snapshot-based sweep path: boot + calibrate one prototype channel,
 * checkpoint it, fork every (seed) cell from the checkpoint through
 * SweepRunner::runTrialsFrom, and pin the whole construction against
 * the cold-boot path — the fork that transmits the reference payload
 * must land on a bit-identical device digest and identical bits.
 */
ScenarioResult
runSnapshotSweep(const gpu::ArchParams &a)
{
    covert::LaunchPerBitConfig cfg;
    cfg.seed = 5;
    const BitVec refPayload = scenarioPayload(24, 7);

    // Cold reference: ordinary calibrate + transmit on one channel.
    covert::L1ConstChannel cold(a, cfg);
    cold.calibrate();
    covert::ChannelResult coldRes = cold.transmit(refPayload);
    cold.harness().device().runUntilIdle();
    const std::uint64_t coldDig = deviceDigest(cold.harness().device());

    // Snapshot path: runTrialsFrom boots the prototype once; each cell
    // forks from the checkpoint. Cell 0 replays the reference payload
    // (exactness oracle); the rest carry seed-derived payloads. Runs
    // inline (1 thread) because the conformance runner already
    // parallelizes across (scenario, arch) cells.
    sim::exec::SweepRunner runner(1);
    struct CellOut
    {
        covert::ChannelResult res;
        std::uint64_t digest = 0;
    };
    auto cells = runner.runTrialsFrom(
        [&] {
            covert::L1ConstChannel proto(a, cfg);
            proto.calibrate();
            return proto.checkpoint();
        },
        3, 0x5eedba5e,
        [&](std::size_t i, std::uint64_t seed,
            const covert::LaunchPerBitChannel::Checkpoint &ck) {
            covert::L1ConstChannel ch(a, cfg);
            ch.restore(ck);
            CellOut out;
            out.res = ch.transmit(i == 0 ? refPayload
                                         : scenarioPayload(24, seed));
            ch.harness().device().runUntilIdle();
            out.digest = deviceDigest(ch.harness().device());
            return out;
        });

    double allErrorFree = 1.0;
    for (const CellOut &c : cells)
        allErrorFree *= c.res.report.errorFree() ? 1.0 : 0.0;

    ScenarioResult r;
    r.add("fork.digest_matches_cold",
          cells[0].digest == coldDig ? 1.0 : 0.0, true);
    r.add("fork.bits_match_cold",
          cells[0].res.received == coldRes.received ? 1.0 : 0.0, true);
    r.add("fork.threshold_matches_cold",
          cells[0].res.threshold == coldRes.threshold ? 1.0 : 0.0, true);
    r.add("cells.error_free", allErrorFree, true);
    r.add("cold.bps", coldRes.bandwidthBps);
    return r;
}

/**
 * Blind attack synthesis acceptance cell (Section 3 run with no
 * datasheet): an AttackerLab that can only launch kernels and read the
 * clock discovers the constant-cache geometry, derives thresholds from
 * measured hit/miss populations, builds a minimal eviction set, sweeps
 * SFU/atomic contention, and ranks the substrates. The bands pin the
 * discovery *exactly* against the per-arch ground truth (capacity,
 * line, sets, ways — the Section 3 table values), pin the eviction set
 * at associativity size, and pin that the auto-selected channel
 * carries a 96-bit session to completion with zero residual errors.
 * The discovery digest (split into two 32-bit halves, each exact in a
 * double) makes any probe-order or measurement drift a conformance
 * failure.
 */
ScenarioResult
runSynthBlind(const gpu::ArchParams &a)
{
    covert::synth::AttackerLab lab(a);
    covert::synth::SynthesizedPlan plan = covert::synth::synthesize(lab);

    covert::session::SessionConfig cfg =
        covert::synth::planSessionConfig(plan);
    covert::session::ChannelSession session(a, cfg);
    session.channel().setTiming(plan.timing());
    covert::session::SessionResult res = session.run(scenarioPayload(96, 17));

    unsigned usable = 0;
    for (const covert::synth::SubstrateScore &s : plan.ranking)
        usable += s.usable ? 1 : 0;

    ScenarioResult r;
    r.add("l1.capacity_bytes", static_cast<double>(plan.l1.sizeBytes),
          true);
    r.add("l1.line_bytes", static_cast<double>(plan.l1.lineBytes), true);
    r.add("l1.num_sets", static_cast<double>(plan.l1.numSets), true);
    r.add("l1.ways", plan.l1.ways, true);
    r.add("l1.plateau_cycles", plan.l1.plateauCycles);
    r.add("l1.ceiling_cycles", plan.l1.ceilingCycles);
    r.add("thresholds.ok", plan.thresholds.ok ? 1.0 : 0.0, true);
    r.add("thresholds.hit_cycles", plan.thresholds.hitCycles);
    r.add("thresholds.miss_cycles", plan.thresholds.missCycles);
    r.add("eviction.minimal_size",
          static_cast<double>(plan.evictionSet.offsets.size()), true);
    r.add("sfu.onset_warps", plan.sfu.onsetWarps, true);
    r.add("atomic.onset_warps", plan.atomic.onsetWarps, true);
    r.add("rank.best_is_l1",
          plan.best() == covert::ChannelResource::L1Const ? 1.0 : 0.0,
          true);
    r.add("rank.usable_substrates", usable, true);
    r.add("session.complete", res.complete ? 1.0 : 0.0, true);
    r.add("session.residual_ber", res.residualBer, true);
    r.add("session.final_is_best",
          res.finalResource == plan.best() ? 1.0 : 0.0, true);
    r.add("session.goodput_bps", res.goodputBps);
    r.add("devices.used", plan.devicesUsed, true);
    r.add("discovery.digest.lo32",
          double(plan.discoveryDigest & 0xffffffffULL), true);
    r.add("discovery.digest.hi32", double(plan.discoveryDigest >> 32),
          true);
    return r;
}

/**
 * Sweep-service acceptance cell (robustness extension): the
 * lease-based sweep engine run three ways over the same spec — cold,
 * under a scripted chaos plan (worker kill + heartbeat stall), and
 * halted-then-resumed against the same content-addressed store — must
 * converge on byte-identical canonical state. The band pins the
 * failure policy end to end: the broken rows land in quarantine after
 * bounded retries (never silently dropped), the flaky rows retry to
 * completion, the resumed run computes only the delta, and the sweep
 * digest (split into exact 32-bit halves) equalizes all three
 * schedules — any schedule leakage into cell results is a conformance
 * failure.
 */
ScenarioResult
runSweepService(const gpu::ArchParams &a)
{
    svc::SweepSpec spec;
    spec.name = "conformance";
    spec.seedBase = 2017;
    spec.seedsPerCell = 2;
    spec.archs = {gpu::generationName(a.generation)};
    spec.kinds.push_back({"l1_baseline", "", "bits=16"});
    spec.kinds.push_back({"flaky", "", "fail=1;den=3"});
    spec.kinds.push_back({"broken", "", ""});
    const std::size_t cellCount = spec.expand().size();

    // Memory-only stores: the comparison is between schedules, not
    // between files (disk persistence is svc_test's subject).
    svc::ResultStore coldStore("", "conf");
    svc::ServiceConfig coldCfg;
    coldCfg.workers = 2;
    const svc::ServiceOutcome cold = svc::runService(spec, coldCfg, coldStore);

    svc::ResultStore chaosStore("", "conf");
    svc::ServiceConfig chaosCfg;
    chaosCfg.workers = 3;
    std::string perr;
    svc::ProcessFaultPlan::parse("w0:kill@2,w1:stall@1x30", chaosCfg.faults,
                            perr);
    const svc::ServiceOutcome chaos = svc::runService(spec, chaosCfg, chaosStore);

    // Halt after three persisted results, then resume against the
    // same store: the second run must skip the acked prefix and
    // converge on the cold digest.
    svc::ResultStore resumeStore("", "conf");
    svc::ServiceConfig haltCfg = coldCfg;
    haltCfg.haltAfterResults = 3;
    const svc::ServiceOutcome halted = svc::runService(spec, haltCfg, resumeStore);
    const svc::ServiceOutcome resumed =
        svc::runService(spec, coldCfg, resumeStore);

    const std::size_t ceiling =
        cellCount * static_cast<std::size_t>(coldCfg.retry.maxAttempts);
    ScenarioResult r;
    r.add("cells", double(cellCount), true);
    r.add("cold.missing", double(cold.missing.size()), true);
    r.add("cold.quarantined", double(cold.stats.queue.quarantined),
          true);
    r.add("cold.retries_bounded",
          cold.stats.queue.retries <= ceiling ? 1.0 : 0.0, true);
    r.add("chaos.digest_matches_cold",
          (chaos.digest == cold.digest && cold.digest != 0) ? 1.0 : 0.0,
          true);
    r.add("chaos.missing", double(chaos.missing.size()), true);
    r.add("chaos.workers_died", double(chaos.stats.workersDied), true);
    r.add("chaos.leases_expired",
          chaos.stats.queue.leasesExpired >= 1 ? 1.0 : 0.0, true);
    r.add("resume.digest_matches_cold",
          resumed.digest == cold.digest ? 1.0 : 0.0, true);
    r.add("resume.halted", halted.stats.halted ? 1.0 : 0.0, true);
    r.add("resume.cached", double(resumed.stats.queue.cached), true);
    r.add("resume.appended",
          double(halted.stats.storeAppended +
                 resumed.stats.storeAppended),
          true);
    r.add("digest.lo32", double(cold.digest & 0xffffffffULL), true);
    r.add("digest.hi32", double(cold.digest >> 32), true);
    return r;
}

} // namespace

const std::vector<Scenario> &
conformanceScenarios()
{
    static const std::vector<Scenario> scenarios = [] {
        std::vector<Scenario> s;
        auto all = std::vector<gpu::Generation>(std::begin(allGens),
                                                std::end(allGens));
        s.push_back({"table1_resources", "Section 5.1, Table 1", all,
                     runTable1});
        s.push_back({"table2_l1", "Section 7.1, Table 2", all, runTable2});
        s.push_back({"table3_sfu", "Section 7.2, Table 3", all,
                     runTable3});
        s.push_back({"fig05_ber",
                     "Section 4.3, Figure 5",
                     {gpu::Generation::Kepler, gpu::Generation::Maxwell},
                     runFig05});
        s.push_back({"fig06_sp_latency", "Section 5.1, Figure 6", all,
                     runFig06});
        s.push_back({"fig07_dp_latency",
                     "Section 5.1, Figure 7",
                     {gpu::Generation::Fermi, gpu::Generation::Kepler},
                     runFig07});
        s.push_back({"fig10_atomic", "Section 6, Figure 10", all,
                     runFig10});
        s.push_back({"sec8_arq",
                     "Section 8 (ARQ extension)",
                     {gpu::Generation::Kepler},
                     runSec8});
        s.push_back({"session_robustness",
                     "Section 8 (session-layer extension)", all,
                     runSessionRobustness});
        s.push_back({"league",
                     "Section 9 (co-evolution extension)", all,
                     runLeagueScenario});
        s.push_back({"snapshot_sweep",
                     "Perf extension: snapshot/fork sweep path "
                     "(digest-pinned against cold boot)",
                     all, runSnapshotSweep});
        s.push_back({"synth_blind",
                     "Section 3 (blind reverse engineering)", all,
                     runSynthBlind});
        s.push_back({"sweep_service",
                     "Robustness extension: fault-tolerant sweep "
                     "service (chaos/resume digest-pinned against "
                     "cold)",
                     all, runSweepService});
        return s;
    }();
    return scenarios;
}

const Scenario *
findScenario(const std::string &name)
{
    for (const Scenario &s : conformanceScenarios()) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

} // namespace gpucc::verify

#include "verify/arch_gen.h"

#include <string>

#include "common/log.h"
#include "common/rng.h"

namespace gpucc::verify
{

namespace
{

/** Draw one element of @p choices. */
template <class T>
T
pick(Rng &rng, const std::vector<T> &choices)
{
    GPUCC_ASSERT(!choices.empty(), "empty arch-gen envelope");
    auto i = static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(choices.size()) - 1));
    return choices[i];
}

/** Inclusive integer draw as a Cycle. */
Cycle
drawCycles(Rng &rng, Cycle lo, Cycle hi)
{
    return static_cast<Cycle>(rng.uniformInt(
        static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
}

} // namespace

ArchGen::ArchGen(ArchGenConfig cfg_) : cfg(std::move(cfg_)) {}

gpu::ArchParams
ArchGen::makeArch(std::uint64_t seed) const
{
    Rng rng(seed ^ 0x6172636867656eULL); // "archgen"
    gpu::ArchParams a;
    a.name = "FuzzArch-" + std::to_string(seed);

    // Rotate the generation so per-generation protocol costs
    // (ProtocolTiming::forArch) all get fuzzed.
    switch (seed % 3) {
      case 0:
        a.generation = gpu::Generation::Fermi;
        break;
      case 1:
        a.generation = gpu::Generation::Kepler;
        break;
      default:
        a.generation = gpu::Generation::Maxwell;
        break;
    }

    a.numSms = static_cast<unsigned>(rng.uniformInt(cfg.minSms, cfg.maxSms));
    a.clockGHz = 0.7 + 0.05 * static_cast<double>(rng.uniformInt(0, 10));
    a.schedulersPerSm = rng.flip() ? 4 : 2;
    a.dispatchUnitsPerScheduler = rng.flip() ? 2 : 1;

    // Per-SM FU counts, kept divisible by the scheduler count so the
    // per-scheduler port model stays exact.
    unsigned sched = a.schedulersPerSm;
    a.spUnits = sched * static_cast<unsigned>(pick(
                            rng, std::vector<int>{16, 32, 48}));
    a.sfuUnits = sched * static_cast<unsigned>(pick(
                             rng, std::vector<int>{2, 4, 8}));
    a.ldstUnits = sched * 8;
    bool hasDp = !rng.bernoulli(cfg.dpAbsentProbability);
    a.dpUnits = hasDp ? sched * 8 : 0;

    // Generated devices always leave headroom for the blind sweeps
    // (<= 16-warp contention probes, multi-warp channel kernels).
    a.limits.maxThreads = 2048;
    a.limits.maxBlocks = 16;
    a.limits.maxWarps = 64;
    a.limits.numRegs = 65536;
    a.limits.smemBytes = 48 * 1024;
    a.limits.smemPerBlockBytes = 48 * 1024;

    // The discovery targets: L1 geometry from power-of-two envelopes,
    // L2 scaled to dominate it, latencies with guaranteed separation.
    std::size_t line = pick(rng, cfg.l1LineBytes);
    std::size_t sets = pick(rng, cfg.l1NumSets);
    unsigned ways = pick(rng, cfg.l1Ways);
    std::size_t l1Size = sets * line * ways;
    a.constMem.l1 = {l1Size, line, ways};
    std::size_t l2Size = std::max<std::size_t>(32768, 8 * l1Size);
    a.constMem.l2 = {l2Size, 256, 8};
    a.constMem.l1HitCycles =
        cfg.l1HitLoCycles +
        2 * drawCycles(rng, 0, cfg.l1HitSteps);
    a.constMem.l2HitCycles =
        a.constMem.l1HitCycles +
        drawCycles(rng, cfg.l2GapLoCycles, cfg.l2GapHiCycles);
    a.constMem.memCycles =
        a.constMem.l2HitCycles +
        drawCycles(rng, cfg.memGapLoCycles, cfg.memGapHiCycles);

    bool slowAtomics = rng.flip(); // pre-Kepler-style RMW atomics
    a.gmem.numPartitions = rng.flip() ? 6 : 4;
    a.gmem.atomicOccCycles = slowAtomics ? 9 : 1;
    a.gmem.atomicTxnOverheadCycles = slowAtomics ? 20 : 8;
    a.gmem.atomicLatencyCycles = drawCycles(rng, 160, 360);
    a.gmem.loadLatencyCycles = a.gmem.atomicLatencyCycles + 150;
    a.gmem.txnOccCycles = slowAtomics ? 4 : 2;

    using gpu::FuType;
    using gpu::OpClass;
    double spPerSched = static_cast<double>(a.spUnits) / sched;
    double sfuPerSched = static_cast<double>(a.sfuUnits) / sched;
    double dpPerSched = static_cast<double>(hasDp ? a.dpUnits : 1) / sched;
    Cycle spLat = drawCycles(rng, 5, 14);
    Cycle sfuLat = drawCycles(rng, 11, 25);
    Cycle sqrtLat = drawCycles(rng, 110, 128);
    double sqrtScale = 2.0 + 0.5 * static_cast<double>(rng.uniformInt(0, 8));
    Cycle dpLat = drawCycles(rng, 6, 16);
    a.ops[OpClass::FAdd] = {FuType::SP, spLat,
                            gpu::warpIssueOccTicks(spPerSched), true};
    a.ops[OpClass::FMul] = {FuType::SP, spLat,
                            gpu::warpIssueOccTicks(spPerSched), true};
    a.ops[OpClass::IAdd] = {FuType::SP, spLat,
                            gpu::warpIssueOccTicks(spPerSched), true};
    a.ops[OpClass::Sinf] = {FuType::SFU, sfuLat,
                            gpu::warpIssueOccTicks(sfuPerSched), true};
    a.ops[OpClass::Sqrt] = {FuType::SFU, sqrtLat,
                            gpu::warpIssueOccTicks(sfuPerSched, sqrtScale),
                            true};
    a.ops[OpClass::DAdd] = {FuType::DPU, hasDp ? dpLat : 0,
                            hasDp ? gpu::warpIssueOccTicks(dpPerSched)
                                  : Tick{0},
                            hasDp};
    a.ops[OpClass::DMul] = {FuType::DPU, hasDp ? dpLat : 0,
                            hasDp ? gpu::warpIssueOccTicks(dpPerSched)
                                  : Tick{0},
                            hasDp};

    a.constMem.l1.validate(a.name.c_str());
    a.constMem.l2.validate(a.name.c_str());
    return a;
}

} // namespace gpucc::verify

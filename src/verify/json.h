/**
 * @file
 * Minimal recursive-descent JSON reader for the verification
 * subsystem's expected-value band files under conformance/expected/.
 *
 * The simulator already owns the *writing* side (common/metrics
 * JsonWriter); this is the matching read side, restricted to what the
 * band files need: objects, arrays, strings, finite numbers, booleans
 * and null. No external dependency, no DOM sharing — parse() builds a
 * small immutable tree that the band loader walks once.
 */

#ifndef GPUCC_VERIFY_JSON_H
#define GPUCC_VERIFY_JSON_H

#include <map>
#include <string>
#include <vector>

namespace gpucc::verify
{

/** One parsed JSON value (tree node). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;                 //!< Kind::Array
    std::map<std::string, JsonValue> members;     //!< Kind::Object

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }

    /** Member @p key, or null-kind sentinel when absent/not an object. */
    const JsonValue &get(const std::string &key) const;

    /** @return true when this is an object containing @p key. */
    bool has(const std::string &key) const;

    /** Number value of member @p key (@p fallback when absent). */
    double numberOr(const std::string &key, double fallback) const;

    /** String value of member @p key (@p fallback when absent). */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;
};

/** Outcome of a parse: a value or a position-annotated error. */
struct JsonParseResult
{
    bool ok = false;
    JsonValue value;
    std::string error; //!< "<message> at offset N" when !ok
};

/** Parse @p text as one JSON document (trailing whitespace allowed). */
JsonParseResult parseJson(const std::string &text);

/** Parse the file at @p path; I/O failures report through error. */
JsonParseResult parseJsonFile(const std::string &path);

} // namespace gpucc::verify

#endif // GPUCC_VERIFY_JSON_H

#include "verify/band.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "verify/json.h"

#ifndef GPUCC_REPO_ROOT
#define GPUCC_REPO_ROOT "."
#endif

namespace gpucc::verify
{

namespace
{

/** Validate and convert one parsed band file. */
void
convertFile(const std::string &path, const JsonValue &root,
            BandLoadResult &out)
{
    if (!root.isObject()) {
        out.errors.push_back(path + ": root is not an object");
        return;
    }
    BandFile f;
    f.sourcePath = path;
    f.scenario = root.stringOr("scenario", "");
    f.paperRef = root.stringOr("paperRef", "");
    if (f.scenario.empty()) {
        out.errors.push_back(path + ": missing \"scenario\"");
        return;
    }
    const JsonValue &archs = root.get("archs");
    if (!archs.isObject() || archs.members.empty()) {
        out.errors.push_back(path + ": missing/empty \"archs\" object");
        return;
    }
    for (const auto &[archName, list] : archs.members) {
        if (!list.isArray()) {
            out.errors.push_back(path + ": archs." + archName +
                                 " is not an array");
            return;
        }
        std::vector<Band> bands;
        for (const JsonValue &e : list.items) {
            Band b;
            b.metric = e.stringOr("metric", "");
            b.ref = e.stringOr("ref", "");
            if (b.metric.empty() || !e.has("lo") || !e.has("hi")) {
                out.errors.push_back(path + ": archs." + archName +
                                     " entry needs metric/lo/hi");
                return;
            }
            b.lo = e.numberOr("lo", 0.0);
            b.hi = e.numberOr("hi", 0.0);
            if (b.hi < b.lo) {
                out.errors.push_back(path + ": band " + b.metric +
                                     " has hi < lo");
                return;
            }
            bands.push_back(std::move(b));
        }
        f.archBands[archName] = std::move(bands);
    }
    out.files.push_back(std::move(f));
}

} // namespace

std::vector<Band>
BandFile::bandsFor(const std::string &archName) const
{
    std::vector<Band> out;
    auto shared = archBands.find("all");
    if (shared != archBands.end())
        out.insert(out.end(), shared->second.begin(),
                   shared->second.end());
    auto mine = archBands.find(archName);
    if (mine != archBands.end())
        out.insert(out.end(), mine->second.begin(), mine->second.end());
    return out;
}

BandLoadResult
loadBandFile(const std::string &path)
{
    BandLoadResult out;
    JsonParseResult parsed = parseJsonFile(path);
    if (!parsed.ok) {
        out.errors.push_back(path + ": " + parsed.error);
        return out;
    }
    convertFile(path, parsed.value, out);
    return out;
}

BandLoadResult
loadBandDir(const std::string &dir)
{
    BandLoadResult out;
    std::error_code ec;
    std::vector<std::string> paths;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".json")
            paths.push_back(entry.path().string());
    }
    if (ec) {
        out.errors.push_back(dir + ": " + ec.message());
        return out;
    }
    std::sort(paths.begin(), paths.end());
    if (paths.empty()) {
        out.errors.push_back(dir + ": no *.json band files");
        return out;
    }
    for (const std::string &p : paths) {
        BandLoadResult one = loadBandFile(p);
        out.errors.insert(out.errors.end(), one.errors.begin(),
                          one.errors.end());
        out.files.insert(out.files.end(),
                         std::make_move_iterator(one.files.begin()),
                         std::make_move_iterator(one.files.end()));
    }
    return out;
}

std::string
defaultBandDir()
{
    if (const char *env = std::getenv("GPUCC_CONFORMANCE_DIR"))
        return env;
    return std::string(GPUCC_REPO_ROOT) + "/conformance/expected";
}

} // namespace gpucc::verify

/**
 * @file
 * Callable conformance scenarios: the measurement bodies of the bench
 * binaries, factored into functions that (a) the benches call with the
 * paper's full payload sizes and (b) the ConformanceRunner calls with
 * scaled-down payloads to check against the expected-value bands in
 * conformance/expected/.
 *
 * Every measure*() helper builds a fresh channel (own Device, own
 * hosts) and is therefore safe to run concurrently through
 * SweepRunner, matching the determinism contract of the bench suite.
 *
 * A Scenario bundles a named, per-architecture run() producing a
 * ScenarioResult: an ordered list of (metric, value) pairs. Metrics
 * flagged `exact` are architectural invariants (unit counts, error-free
 * flags, contention onsets) that recording pins to a point band
 * [v, v]; the rest are timing-derived and get a tolerance band.
 */

#ifndef GPUCC_VERIFY_SCENARIOS_H
#define GPUCC_VERIFY_SCENARIOS_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bitstream.h"
#include "covert/channel.h"
#include "covert/channels/atomic_channel.h"
#include "gpu/arch_params.h"

namespace gpucc::covert
{
class ErrorCode;
} // namespace gpucc::covert

namespace gpucc::obs
{
class Profiler;
} // namespace gpucc::obs

namespace gpucc::verify
{

/** Deterministic payload shared by benches and conformance runs. */
BitVec scenarioPayload(std::size_t bits, std::uint64_t seed = 2017);

/** Bandwidth/error summary of one channel transmission. */
struct ChannelMeasurement
{
    double bps = 0.0;
    double errorRate = 0.0;
    bool errorFree = false;
};

/** Condense a ChannelResult into the summary the scenarios report. */
ChannelMeasurement summarize(const covert::ChannelResult &r);

// ---- Constant-cache channels (Tables 2, Figure 5) -------------------

/** Launch-per-bit L1 baseline with the default operating point. */
ChannelMeasurement measureL1Baseline(const gpu::ArchParams &arch,
                                     std::size_t bits);

/** Launch-per-bit L1 at an explicit (iterations, lead, jitter) point. */
ChannelMeasurement measureL1LaunchPerBit(const gpu::ArchParams &arch,
                                         std::size_t bits,
                                         const covert::LaunchPerBitConfig &cfg);

/** Launch-per-bit L2 at an explicit operating point. */
ChannelMeasurement measureL2LaunchPerBit(const gpu::ArchParams &arch,
                                         std::size_t bits,
                                         const covert::LaunchPerBitConfig &cfg);

/** Synchronized persistent-kernel L1 channel (Figure 11 protocol);
 *  @p dataSetsPerSm > 1 adds multi-bit cache sets, @p allSms adds
 *  SM-level parallelism (the Table 2 columns). */
ChannelMeasurement measureSyncL1(const gpu::ArchParams &arch,
                                 std::size_t bits,
                                 unsigned dataSetsPerSm = 1,
                                 bool allSms = false);

// ---- SFU channels (Table 3) -----------------------------------------

/** Launch-per-bit SFU baseline. */
ChannelMeasurement measureSfuBaseline(const gpu::ArchParams &arch,
                                      std::size_t bits);

/** SFU channel parallel over warp schedulers (@p acrossSms adds SMs). */
ChannelMeasurement measureSfuParallel(const gpu::ArchParams &arch,
                                      std::size_t bits, bool acrossSms);

/** Synchronized persistent SFU channel (Section 7.1 extension). */
ChannelMeasurement measureSyncSfu(const gpu::ArchParams &arch,
                                  std::size_t bits);

// ---- Atomic channel (Figure 10) -------------------------------------

struct AtomicMeasurement
{
    ChannelMeasurement channel;
    unsigned iterations = 0; //!< auto-tuned per-bit iteration count
};

/** Auto-tuned atomic channel for one Figure 10 access scenario. */
AtomicMeasurement measureAtomic(const gpu::ArchParams &arch,
                                covert::AtomicScenario scenario,
                                std::size_t bits);

// ---- Functional-unit latency curves (Figures 6 and 7) ---------------

struct FuCurveSummary
{
    double baseCycles = 0.0; //!< warp-0 latency with 1 resident warp
    double peakCycles = 0.0; //!< warp-0 latency at @p maxWarps
    unsigned onsetWarps = 0; //!< first warp count that shows contention
};

/** Characterize one op's latency-vs-warps curve. */
FuCurveSummary measureFuCurve(const gpu::ArchParams &arch, gpu::OpClass op,
                              unsigned maxWarps = 32);

// ---- Reliable link under fault injection (Section 8 extension) ------

/** Raw duplex L1 exchange (A->B direction) under a fault plan. */
ChannelMeasurement measureDuplexRaw(const gpu::ArchParams &arch,
                                    const std::string &planName,
                                    std::uint64_t faultSeed,
                                    const BitVec &payload);

/** One-pass FEC over the raw duplex channel (no retransmission):
 *  encode, exchange once, decode; residual errors vs @p payload. */
ChannelMeasurement measureFecDuplex(const gpu::ArchParams &arch,
                                    const std::string &planName,
                                    std::uint64_t faultSeed,
                                    const BitVec &payload,
                                    const covert::ErrorCode &code);

struct ArqMeasurement
{
    double residualBer = 0.0;
    double goodputBps = 0.0;
    bool complete = false;
    unsigned retransmissions = 0;
};

/** ARQ link (selective repeat) over the duplex channel under a fault
 *  plan; @p innerFec optionally protects each frame. */
ArqMeasurement measureArqOverPlan(const gpu::ArchParams &arch,
                                  const std::string &planName,
                                  std::uint64_t faultSeed,
                                  const BitVec &payload,
                                  const covert::ErrorCode *innerFec = nullptr);

// ---- Self-calibrating session (robustness extension) ----------------

struct SessionMeasurement
{
    double residualBer = 0.0;
    double goodputBps = 0.0;
    bool complete = false;
    bool calibrated = false; //!< initial online calibration accepted
    unsigned resyncs = 0;
    unsigned recalibrations = 0;
    unsigned degradeSteps = 0;
    unsigned evictions = 0; //!< kernel evictions the plan landed
    /** Architectural end-state digest of the session's device (plan
     *  disarmed, queue drained). Ledger/property tests use it to pin
     *  that observer attachment never perturbs the simulation. */
    std::uint64_t deviceDigest = 0;
};

/** Calibrated self-healing session (pilot/resync/ladder) delivering
 *  @p payload under a fault plan. No hand-tuned threshold enters: the
 *  session derives its own from the start-of-session calibration.
 *  @p profiler optionally receives the session's phase costs. */
SessionMeasurement measureSessionOverPlan(const gpu::ArchParams &arch,
                                          const std::string &planName,
                                          std::uint64_t faultSeed,
                                          const BitVec &payload,
                                          obs::Profiler *profiler = nullptr);

// ---- Scenario registry ----------------------------------------------

/** One (metric, value) scenario output. */
struct MetricValue
{
    std::string name;
    double value = 0.0;
    bool exact = false; //!< record as [v, v] instead of a tolerance band
};

/** Ordered metric list produced by one scenario on one architecture. */
struct ScenarioResult
{
    std::vector<MetricValue> metrics;

    void
    add(std::string name, double value, bool exact = false)
    {
        metrics.push_back({std::move(name), value, exact});
    }

    /** @return the named metric or nullptr. */
    const MetricValue *find(const std::string &name) const;
};

/** A named conformance scenario, tied to its paper anchor. */
struct Scenario
{
    std::string name;     //!< band-file "scenario" key
    std::string paperRef; //!< table/figure/section it pins
    std::vector<gpu::Generation> generations; //!< archs it runs on
    std::function<ScenarioResult(const gpu::ArchParams &)> run;

    bool runsOn(gpu::Generation g) const;
};

/** All registered scenarios, in report order. */
const std::vector<Scenario> &conformanceScenarios();

/** Look up a scenario by name (nullptr when unknown). */
const Scenario *findScenario(const std::string &name);

} // namespace gpucc::verify

#endif // GPUCC_VERIFY_SCENARIOS_H

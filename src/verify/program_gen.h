/**
 * @file
 * Seeded random warp-program generator for the metamorphic test suite.
 *
 * ProgramGen turns a 64-bit seed into a complete KernelLaunch whose
 * body exercises the device API surface — FU ops, clock reads, constant
 * loads (single and dependent sequences), global loads/stores, atomics,
 * shared-memory accesses, idle sleeps, and block barriers — with every
 * choice drawn from deterministic RNG streams. The same seed always
 * yields the same program, so generated kernels can serve as oracles
 * that need no golden values: run the program twice (or at different
 * GPUCC_THREADS, or with instrumentation attached vs detached) and
 * compare state digests.
 *
 * Barrier safety: the number and placement of __syncthreads() slots is
 * drawn from the *skeleton* stream (seed only), identical for every
 * warp, so all warps of a block always reach the same barrier count and
 * generated programs cannot deadlock. Per-warp variation (which ops,
 * which addresses) comes from a stream derived from seed and global
 * warp id.
 */

#ifndef GPUCC_VERIFY_PROGRAM_GEN_H
#define GPUCC_VERIFY_PROGRAM_GEN_H

#include <cstdint>

#include "gpu/arch_params.h"
#include "gpu/kernel.h"

namespace gpucc::verify
{

/** Knobs bounding what generated programs may do. */
struct ProgramGenConfig
{
    unsigned minSegments = 2;  //!< barrier-delimited program sections
    unsigned maxSegments = 5;
    unsigned minOpsPerSegment = 1;
    unsigned maxOpsPerSegment = 6;
    unsigned maxGridBlocks = 3;
    unsigned maxWarpsPerBlock = 4;
    bool useBarriers = true;
    bool useGlobalMemory = true; //!< loads/stores/atomics
    bool useConstMemory = true;  //!< single loads and dependent chains
    bool useSharedMemory = true;
    /** Global-address region base; programs stay inside
     *  [base, base + span). */
    Addr globalBase = 0x400000;
    Addr globalSpan = 0x4000;
};

/** Deterministic random kernel factory. */
class ProgramGen
{
  public:
    explicit ProgramGen(const gpu::ArchParams &arch,
                        ProgramGenConfig cfg = {});

    /**
     * Build the kernel for @p seed: grid shape, shared-memory
     * footprint, and the warp body are all functions of the seed alone
     * (given a fixed config and architecture).
     */
    gpu::KernelLaunch makeKernel(std::uint64_t seed) const;

  private:
    gpu::ArchParams arch;
    ProgramGenConfig cfg;
};

} // namespace gpucc::verify

#endif // GPUCC_VERIFY_PROGRAM_GEN_H

/**
 * @file
 * Seeded random architecture generator for the synthesis fuzz suite.
 *
 * The program_gen idea applied one level down: a 64-bit seed becomes a
 * complete ArchParams — cache geometry, latencies, SM/scheduler/FU
 * counts, atomic timing — drawn from envelopes that keep every
 * generated device *attackable* (an L1 with at least the duplex
 * protocol's set budget, clean hit/miss latency separation, enough
 * warps for the contention sweeps) while varying everything the blind
 * synthesizer claims to discover. The same seed always yields the same
 * architecture, so a fuzz case needs no golden file: generate, run
 * blind discovery, and compare the SynthesizedPlan against the very
 * params that built the device.
 *
 * Geometry is drawn from power-of-two envelopes on purpose: the
 * capacity probe's doubling sweep then lands on the exact size, the
 * same property real constant caches have. Latency envelopes keep the
 * orderings the simulator assumes (l1Hit < l2Hit < mem, with gaps wide
 * enough that a threshold between populations exists at all).
 */

#ifndef GPUCC_VERIFY_ARCH_GEN_H
#define GPUCC_VERIFY_ARCH_GEN_H

#include <cstdint>
#include <vector>

#include "gpu/arch_params.h"

namespace gpucc::verify
{

/** Envelopes bounding what generated architectures look like. */
struct ArchGenConfig
{
    /** L1 geometry choices (each drawn independently). */
    std::vector<std::size_t> l1LineBytes = {32, 64, 128};
    std::vector<std::size_t> l1NumSets = {8, 16, 32}; //!< >= duplex's 8
    std::vector<unsigned> l1Ways = {2, 4, 8};

    /** L1-hit latency: lo + 2*k cycles, k in [0, steps]. */
    Cycle l1HitLoCycles = 36;
    unsigned l1HitSteps = 12; //!< up to 36 + 24 = 60

    /** Additive gaps (inclusive ranges) above the previous level. */
    Cycle l2GapLoCycles = 48, l2GapHiCycles = 80;
    Cycle memGapLoCycles = 120, memGapHiCycles = 200;

    unsigned minSms = 8, maxSms = 16;

    /** Probability that the generated arch has no DP units (the
     *  Maxwell-style hole the characterizer must not trip over). */
    double dpAbsentProbability = 0.25;
};

/** Deterministic random architecture factory. */
class ArchGen
{
  public:
    explicit ArchGen(ArchGenConfig cfg = {});

    /** Build the architecture for @p seed (a pure function of seed and
     *  config). The name embeds the seed for log forensics. */
    gpu::ArchParams makeArch(std::uint64_t seed) const;

  private:
    ArchGenConfig cfg;
};

} // namespace gpucc::verify

#endif // GPUCC_VERIFY_ARCH_GEN_H

/**
 * @file
 * ConformanceRunner: executes the registered paper scenarios and checks
 * every measured metric against the expected-value bands committed
 * under conformance/expected/.
 *
 * The runner is contract-strict in both directions: a band naming a
 * metric the scenario did not produce fails, and a band file naming an
 * architecture the scenario does not run on is a load error. Scenario
 * cells (scenario x architecture) are independent simulations and run
 * in parallel through SweepRunner, honoring GPUCC_THREADS.
 *
 * Record mode regenerates band files from fresh measurements: exact
 * metrics pin to [v, v], timing-derived metrics get a +-tolerance
 * band. Recorded files are the starting point — the committed files
 * carry hand-tuned widths and paper anchors in their "ref" fields.
 */

#ifndef GPUCC_VERIFY_CONFORMANCE_RUNNER_H
#define GPUCC_VERIFY_CONFORMANCE_RUNNER_H

#include <iosfwd>
#include <string>
#include <vector>

#include "verify/band.h"
#include "verify/scenarios.h"

namespace gpucc::obs
{
class Profiler;
} // namespace gpucc::obs

namespace gpucc::verify
{

/** One band evaluated against one measured metric. */
struct CheckResult
{
    std::string scenario;
    std::string arch;   //!< generation name ("Fermi"/"Kepler"/"Maxwell")
    std::string metric;
    std::string ref;    //!< paper anchor from the band file
    double lo = 0.0;
    double hi = 0.0;
    double measured = 0.0;
    bool present = false; //!< scenario produced the metric at all
    bool pass = false;
};

/** One executed (scenario, architecture) cell. */
struct ScenarioRun
{
    std::string scenario;
    std::string arch;
    ScenarioResult result;
};

/** Full outcome of a conformance pass. */
struct ConformanceReport
{
    std::vector<CheckResult> checks;
    std::vector<ScenarioRun> runs;
    std::vector<std::string> errors; //!< load/shape problems

    unsigned passed() const;
    unsigned failed() const;

    /** @return true when every check passed and nothing errored. */
    bool
    ok() const
    {
        return errors.empty() && failed() == 0 && !checks.empty();
    }
};

/** What to run and against which bands. */
struct ConformanceOptions
{
    std::string bandDir;                 //!< empty = defaultBandDir()
    std::vector<std::string> scenarios;  //!< name filter; empty = all
    std::vector<std::string> archs;      //!< generation filter; empty = all

    /** Optional phase profiler (non-owning). Each (scenario, arch)
     *  cell bills one "cell" scope; per-cell profilers are merged in
     *  cell-index order, worker-count invariant. */
    obs::Profiler *profiler = nullptr;
};

/** Execute the conformance suite. */
ConformanceReport runConformance(const ConformanceOptions &opts = {});

/** Serialize @p report as JSON (CI artifact schema). */
void writeConformanceJson(const ConformanceReport &report,
                          std::ostream &os);

/** Band regeneration parameters. */
struct RecordOptions
{
    std::string outDir;                 //!< directory for *.json files
    double tolerance = 0.25;            //!< half-width for banded metrics
    std::vector<std::string> scenarios; //!< name filter; empty = all
};

/** Run scenarios and write one band file each into outDir.
 *  @return paths written; load/run problems land in @p errors. */
std::vector<std::string> recordBands(const RecordOptions &opts,
                                     std::vector<std::string> &errors);

} // namespace gpucc::verify

#endif // GPUCC_VERIFY_CONFORMANCE_RUNNER_H

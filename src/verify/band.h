/**
 * @file
 * Machine-readable expected-value bands derived from the paper.
 *
 * Each file under conformance/expected/ pins one scenario (a table,
 * figure, or section claim) to numeric intervals per architecture:
 *
 * {
 *   "scenario": "table2_l1",
 *   "paperRef": "Section 7.1, Table 2",
 *   "archs": {
 *     "Kepler": [
 *       {"metric": "sync.bps", "lo": 60000, "hi": 95000,
 *        "ref": "paper: 75 Kbps"},
 *       ...
 *     ]
 *   }
 * }
 *
 * Arch keys are generation names ("Fermi" / "Kepler" / "Maxwell") or
 * "all" for bands shared by every architecture. The ConformanceRunner
 * executes the scenario and checks every listed metric against its
 * interval; a metric the scenario did not produce is itself a failure
 * (bands are a contract, not a filter).
 */

#ifndef GPUCC_VERIFY_BAND_H
#define GPUCC_VERIFY_BAND_H

#include <map>
#include <string>
#include <vector>

namespace gpucc::verify
{

/** One [lo, hi] interval a measured metric must land in. */
struct Band
{
    std::string metric; //!< scenario metric name
    double lo = 0.0;
    double hi = 0.0;
    std::string ref;    //!< paper anchor (printed in reports)

    /** @return true when @p v lies inside the band (inclusive). */
    bool contains(double v) const { return v >= lo && v <= hi; }
};

/** All bands of one scenario, keyed by architecture. */
struct BandFile
{
    std::string scenario;            //!< must match a registered scenario
    std::string paperRef;
    std::string sourcePath;          //!< file it was loaded from
    std::map<std::string, std::vector<Band>> archBands; //!< by arch name

    /**
     * Bands applying to @p archName: the arch-specific list plus any
     * "all" entries.
     */
    std::vector<Band> bandsFor(const std::string &archName) const;
};

/** Result of loading a band directory. */
struct BandLoadResult
{
    std::vector<BandFile> files;
    std::vector<std::string> errors; //!< per-file parse/shape problems

    bool ok() const { return errors.empty(); }
};

/** Parse one band file (shape-validated). */
BandLoadResult loadBandFile(const std::string &path);

/** Load every *.json file in @p dir (sorted by filename). */
BandLoadResult loadBandDir(const std::string &dir);

/**
 * Default band directory: $GPUCC_CONFORMANCE_DIR when set, otherwise
 * the conformance/expected tree committed next to the sources.
 */
std::string defaultBandDir();

} // namespace gpucc::verify

#endif // GPUCC_VERIFY_BAND_H

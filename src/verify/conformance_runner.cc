#include "verify/conformance_runner.h"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>

#include "common/metrics/json_writer.h"
#include "sim/exec/sweep_runner.h"
#include "verify/band.h"

namespace gpucc::verify
{

namespace
{

bool
inFilter(const std::vector<std::string> &filter, const std::string &name)
{
    if (filter.empty())
        return true;
    for (const std::string &f : filter) {
        if (f == name)
            return true;
    }
    return false;
}

/** Architectures a scenario covers, after an optional name filter. */
std::vector<gpu::ArchParams>
archsFor(const Scenario &s, const std::vector<std::string> &archFilter)
{
    std::vector<gpu::ArchParams> out;
    for (const auto &arch : gpu::allArchitectures()) {
        if (!s.runsOn(arch.generation))
            continue;
        if (!inFilter(archFilter, gpu::generationName(arch.generation)))
            continue;
        out.push_back(arch);
    }
    return out;
}

} // namespace

unsigned
ConformanceReport::passed() const
{
    unsigned n = 0;
    for (const CheckResult &c : checks)
        n += c.pass ? 1 : 0;
    return n;
}

unsigned
ConformanceReport::failed() const
{
    return static_cast<unsigned>(checks.size()) - passed();
}

ConformanceReport
runConformance(const ConformanceOptions &opts)
{
    ConformanceReport report;
    const std::string dir =
        opts.bandDir.empty() ? defaultBandDir() : opts.bandDir;
    BandLoadResult loaded = loadBandDir(dir);
    report.errors = loaded.errors;

    // Resolve band files against the scenario registry up front so
    // unknown scenarios and impossible architectures are load errors,
    // not silently skipped contracts.
    struct Cell
    {
        const BandFile *file;
        const Scenario *scenario;
        gpu::ArchParams arch;
    };
    std::vector<Cell> cells;
    std::set<std::string> seenScenarios;
    for (const BandFile &f : loaded.files) {
        if (!inFilter(opts.scenarios, f.scenario))
            continue;
        const Scenario *s = findScenario(f.scenario);
        if (s == nullptr) {
            report.errors.push_back(f.sourcePath +
                                    ": unknown scenario \"" + f.scenario +
                                    "\"");
            continue;
        }
        if (!seenScenarios.insert(f.scenario).second) {
            report.errors.push_back(f.sourcePath +
                                    ": duplicate scenario \"" +
                                    f.scenario + "\"");
            continue;
        }
        for (const auto &[archName, bands] : f.archBands) {
            if (archName == "all")
                continue;
            bool known = false;
            for (const auto &arch : gpu::allArchitectures())
                known |= gpu::generationName(arch.generation) == archName;
            if (!known) {
                report.errors.push_back(f.sourcePath +
                                        ": unknown architecture \"" +
                                        archName + "\"");
            } else if (!inFilter(opts.archs, archName)) {
                // filtered out: fine
            } else {
                bool covered = false;
                for (const auto &arch : archsFor(*s, opts.archs))
                    covered |= gpu::generationName(arch.generation) ==
                               archName;
                if (!covered)
                    report.errors.push_back(
                        f.sourcePath + ": scenario \"" + f.scenario +
                        "\" does not run on " + archName);
            }
        }
        // Only simulate architectures the file actually constrains;
        // "all" bands fan out to every architecture the scenario
        // supports.
        for (const auto &arch : archsFor(*s, opts.archs)) {
            if (!f.bandsFor(gpu::generationName(arch.generation)).empty())
                cells.push_back({&f, s, arch});
        }
    }

    // Every (scenario, architecture) cell is an independent simulation.
    sim::exec::SweepRunner runner;
    runner.attachProfiler(opts.profiler);
    auto results = runner.runSweep(cells, [](const Cell &c) {
        return c.scenario->run(c.arch);
    });

    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        const std::string archName =
            gpu::generationName(c.arch.generation);
        report.runs.push_back({c.file->scenario, archName, results[i]});
        for (const Band &b : c.file->bandsFor(archName)) {
            CheckResult check;
            check.scenario = c.file->scenario;
            check.arch = archName;
            check.metric = b.metric;
            check.ref = b.ref;
            check.lo = b.lo;
            check.hi = b.hi;
            const MetricValue *m = results[i].find(b.metric);
            check.present = m != nullptr;
            if (m != nullptr) {
                check.measured = m->value;
                check.pass = b.contains(m->value);
            }
            report.checks.push_back(std::move(check));
        }
    }
    return report;
}

void
writeConformanceJson(const ConformanceReport &report, std::ostream &os)
{
    metrics::JsonWriter w(os, true);
    w.beginObject();
    w.field("passed", static_cast<std::uint64_t>(report.passed()));
    w.field("failed", static_cast<std::uint64_t>(report.failed()));
    w.field("ok", report.ok());
    w.beginArray("errors");
    for (const std::string &e : report.errors)
        w.value(e);
    w.endArray();
    w.beginArray("checks");
    for (const CheckResult &c : report.checks) {
        w.beginObject();
        w.field("scenario", c.scenario);
        w.field("arch", c.arch);
        w.field("metric", c.metric);
        w.field("lo", c.lo);
        w.field("hi", c.hi);
        w.field("measured", c.measured);
        w.field("present", c.present);
        w.field("pass", c.pass);
        if (!c.ref.empty())
            w.field("ref", c.ref);
        w.endObject();
    }
    w.endArray();
    w.beginArray("runs");
    for (const ScenarioRun &r : report.runs) {
        w.beginObject();
        w.field("scenario", r.scenario);
        w.field("arch", r.arch);
        w.beginObject("metrics");
        for (const MetricValue &m : r.result.metrics)
            w.field(m.name, m.value);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

std::vector<std::string>
recordBands(const RecordOptions &opts, std::vector<std::string> &errors)
{
    std::vector<std::string> written;
    std::error_code ec;
    std::filesystem::create_directories(opts.outDir, ec);
    if (ec) {
        errors.push_back(opts.outDir + ": " + ec.message());
        return written;
    }

    for (const Scenario &s : conformanceScenarios()) {
        if (!inFilter(opts.scenarios, s.name))
            continue;
        auto archs = archsFor(s, {});
        sim::exec::SweepRunner runner;
        auto results =
            runner.runSweep(archs, [&s](const gpu::ArchParams &a) {
                return s.run(a);
            });

        const std::string path = opts.outDir + "/" + s.name + ".json";
        std::ofstream os(path);
        if (!os.good()) {
            errors.push_back(path + ": cannot open for writing");
            continue;
        }
        metrics::JsonWriter w(os, true);
        w.beginObject();
        w.field("scenario", s.name);
        w.field("paperRef", s.paperRef);
        w.beginObject("archs");
        for (std::size_t i = 0; i < archs.size(); ++i) {
            w.beginArray(gpu::generationName(archs[i].generation));
            for (const MetricValue &m : results[i].metrics) {
                double lo = m.value;
                double hi = m.value;
                if (!m.exact) {
                    lo = m.value * (1.0 - opts.tolerance);
                    hi = m.value * (1.0 + opts.tolerance);
                    if (lo > hi)
                        std::swap(lo, hi); // negative measurements
                }
                w.beginObject();
                w.field("metric", m.name);
                w.field("lo", lo);
                w.field("hi", hi);
                w.endObject();
            }
            w.endArray();
        }
        w.endObject();
        w.endObject();
        if (!os.good()) {
            errors.push_back(path + ": write failed");
            continue;
        }
        written.push_back(path);
    }
    return written;
}

} // namespace gpucc::verify

#include "verify/digest.h"

#include <cstring>

#include "common/log.h"
#include "gpu/device.h"
#include "gpu/sm.h"
#include "gpu/thread_block.h"
#include "gpu/warp_scheduler.h"
#include "mem/cache_geometry.h"
#include "mem/set_assoc_cache.h"
#include "sim/resource_pool.h"

namespace gpucc::verify
{

std::uint64_t
StateDigest::mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

void
StateDigest::f64(double x)
{
    if (x == 0.0)
        x = 0.0; // collapse -0.0
    std::uint64_t bits;
    std::memcpy(&bits, &x, sizeof bits);
    u64(bits);
}

void
StateDigest::str(const std::string &s)
{
    u64(s.size());
    std::uint64_t word = 0;
    unsigned fill = 0;
    for (unsigned char c : s) {
        word = (word << 8) | c;
        if (++fill == 8) {
            u64(word);
            word = 0;
            fill = 0;
        }
    }
    if (fill != 0)
        u64(word);
}

void
digestPool(const sim::ResourcePool &pool, StateDigest &d)
{
    d.u64(pool.servers());
    d.u64(pool.busyTicks());
    d.u64(pool.totalQueueing());
    d.u64(pool.requests());
    for (Tick t : pool.serverFreeTicks())
        d.u64(t);
}

void
digestCache(const mem::SetAssocCache &cache, StateDigest &d)
{
    const mem::CacheGeometry &g = cache.geometry();
    d.u64(g.numSets());
    d.u64(g.ways);
    d.u64(cache.hits());
    d.u64(cache.misses());
    for (std::size_t set = 0; set < g.numSets(); ++set) {
        for (const auto &line : cache.setState(set)) {
            if (!line.valid) {
                d.u64(0);
                continue;
            }
            d.u64(1);
            d.u64(line.tag);
            d.i64(line.owner);
            d.u64(line.lruRank);
        }
    }
}

void
digestDevice(gpu::Device &dev, StateDigest &d, const DigestOptions &opts)
{
    if (opts.deviceClock)
        d.u64(dev.now());

    // Per-SM occupancy and per-scheduler pipeline timelines.
    for (unsigned i = 0; i < dev.numSms(); ++i) {
        gpu::Sm &sm = dev.sm(i);
        const gpu::SmOccupancy &occ = sm.occupancy();
        d.u64(occ.blocks);
        d.u64(occ.threads);
        d.u64(occ.warps);
        d.u64(occ.regs);
        d.u64(occ.smemBytes);
        d.u64(sm.residentKernels());
        for (unsigned s = 0; s < sm.numSchedulers(); ++s) {
            gpu::WarpScheduler &sched = sm.scheduler(s);
            digestPool(sched.dispatch(), d);
            digestPool(sched.port(gpu::FuType::SP), d);
            digestPool(sched.port(gpu::FuType::SFU), d);
            digestPool(sched.port(gpu::FuType::LDST), d);
            if (dev.arch().fuCount(gpu::FuType::DPU) > 0)
                digestPool(sched.port(gpu::FuType::DPU), d);
        }
        digestCache(dev.constMem().l1Cache(i), d);
    }
    digestCache(dev.constMem().l2Cache(), d);

    // Global memory: partition timelines plus the functional store.
    mem::GlobalMemory &gm = dev.globalMem();
    for (unsigned p = 0; p < gm.params().numPartitions; ++p) {
        digestPool(gm.atomicUnitPool(p), d);
        digestPool(gm.dataPortPool(p), d);
    }
    if (opts.memoryWords) {
        auto wordsSorted = gm.wordsSnapshot();
        d.u64(wordsSorted.size());
        for (const auto &[addr, value] : wordsSorted) {
            d.u64(addr);
            d.u64(value);
        }
    }

    if (opts.eventQueue) {
        auto pending = dev.events().pendingEvents();
        d.u64(pending.size());
        for (const auto &[when, seq] : pending) {
            d.u64(when);
            d.u64(seq);
        }
    }

    if (opts.kernelOutputs) {
        const auto &kernels = dev.kernels();
        d.u64(kernels.size());
        for (const auto &k : kernels) {
            d.str(k->name());
            d.u64(k->done() ? 1 : 0);
            d.u64(k->startTick());
            d.u64(k->endTick());
            for (const auto &rec : k->blockRecords()) {
                d.u64(rec.blockId);
                d.u64(rec.smId);
                d.u64(rec.startTick);
                d.u64(rec.endTick);
            }
            for (unsigned w = 0; w < k->totalWarps(); ++w) {
                const auto &out = k->out(w);
                d.u64(out.size());
                for (std::uint64_t v : out)
                    d.u64(v);
            }
        }
    }
}

std::uint64_t
deviceDigest(gpu::Device &dev, const DigestOptions &opts)
{
    StateDigest d;
    digestDevice(dev, d, opts);
    return d.value();
}

DigestCheckpoints::DigestCheckpoints(gpu::Device &dev_, Cycle periodCycles,
                                     DigestOptions opts_)
    : dev(dev_), period(cyclesToTicks(periodCycles)), opts(opts_)
{
    GPUCC_ASSERT(periodCycles > 0, "checkpoint period must be positive");
    scheduleNext();
}

void
DigestCheckpoints::checkpointNow()
{
    StateDigest d;
    digestDevice(dev, d, opts);
    rolling.fold(d);
    ++taken;
}

void
DigestCheckpoints::scheduleNext()
{
    dev.events().schedule(dev.events().now() + period, [this] {
        checkpointNow();
        // Re-arm only while other work is pending, mirroring the
        // metrics sampler: a checkpoint alone must not keep the
        // simulation alive.
        if (!dev.events().empty())
            scheduleNext();
    });
}

} // namespace gpucc::verify

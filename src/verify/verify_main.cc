/**
 * @file
 * gpucc_verify: command-line driver for the paper-fidelity conformance
 * suite.
 *
 *   gpucc_verify                         run all bands, print a table
 *   gpucc_verify --expected DIR          use a different band directory
 *   gpucc_verify --scenario NAME ...     restrict to named scenarios
 *   gpucc_verify --arch GEN ...          restrict to Fermi/Kepler/Maxwell
 *   gpucc_verify --report PATH           also write the JSON report
 *   gpucc_verify --record DIR            regenerate band files instead
 *   gpucc_verify --tolerance F           half-width for --record bands
 *   gpucc_verify --list                  list registered scenarios
 *
 * Exit status: 0 when every check passes, 1 on any failed check,
 * 2 on usage or load errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/table.h"
#include "gpu/arch_params.h"
#include "verify/conformance_runner.h"
#include "verify/scenarios.h"

using namespace gpucc;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--expected DIR] [--scenario NAME]... "
                 "[--arch GEN]...\n"
                 "          [--report PATH] [--record DIR] "
                 "[--tolerance F] [--list]\n",
                 argv0);
    return 2;
}

int
listScenarios()
{
    Table t("Registered conformance scenarios");
    t.header({"scenario", "paper reference", "architectures"});
    for (const auto &s : verify::conformanceScenarios()) {
        std::string archs;
        for (auto g : s.generations) {
            if (!archs.empty())
                archs += ", ";
            archs += gpu::generationName(g);
        }
        t.row({s.name, s.paperRef, archs});
    }
    t.print();
    return 0;
}

std::string
fmtBound(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    verify::ConformanceOptions opts;
    verify::RecordOptions record;
    std::string reportPath;
    bool doRecord = false;

    for (int i = 1; i < argc; ++i) {
        auto arg = [&](const char *flag, std::string &out) {
            if (std::strcmp(argv[i], flag) != 0)
                return false;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", flag);
                std::exit(2);
            }
            out = argv[++i];
            return true;
        };
        std::string v;
        if (std::strcmp(argv[i], "--list") == 0)
            return listScenarios();
        if (arg("--expected", opts.bandDir))
            continue;
        if (arg("--report", reportPath))
            continue;
        if (arg("--scenario", v)) {
            opts.scenarios.push_back(v);
            record.scenarios.push_back(v);
            continue;
        }
        if (arg("--arch", v)) {
            opts.archs.push_back(v);
            continue;
        }
        if (arg("--record", record.outDir)) {
            doRecord = true;
            continue;
        }
        if (arg("--tolerance", v)) {
            record.tolerance = std::stod(v);
            continue;
        }
        return usage(argv[0]);
    }

    setVerbose(false);

    if (doRecord) {
        std::vector<std::string> errors;
        auto written = verify::recordBands(record, errors);
        for (const auto &p : written)
            std::printf("[record] wrote %s\n", p.c_str());
        for (const auto &e : errors)
            std::fprintf(stderr, "[record] error: %s\n", e.c_str());
        return errors.empty() ? 0 : 2;
    }

    verify::ConformanceReport report = verify::runConformance(opts);

    for (const auto &e : report.errors)
        std::fprintf(stderr, "[conformance] error: %s\n", e.c_str());

    Table t("Conformance checks vs paper bands");
    t.header({"scenario", "arch", "metric", "measured", "band",
              "status"});
    for (const auto &c : report.checks) {
        t.row({c.scenario, c.arch, c.metric,
               c.present ? fmtBound(c.measured) : "(missing)",
               "[" + fmtBound(c.lo) + ", " + fmtBound(c.hi) + "]",
               c.pass ? "pass" : "FAIL"});
    }
    t.print();
    std::printf("conformance: %u passed, %u failed, %zu errors\n",
                report.passed(), report.failed(), report.errors.size());
    for (const auto &c : report.checks) {
        if (!c.pass && !c.ref.empty())
            std::printf("  FAIL %s/%s %s  (%s)\n", c.scenario.c_str(),
                        c.arch.c_str(), c.metric.c_str(), c.ref.c_str());
    }

    if (!reportPath.empty()) {
        std::ofstream os(reportPath);
        if (!os.good()) {
            std::fprintf(stderr, "cannot open report path %s\n",
                         reportPath.c_str());
            return 2;
        }
        verify::writeConformanceJson(report, os);
        std::printf("[report] written to %s\n", reportPath.c_str());
    }

    if (!report.errors.empty())
        return 2;
    return report.ok() ? 0 : 1;
}
